//! Estimate-vs-ground-truth accuracy summaries.
//!
//! The paper's measurement claim is that `T_LB` (estimated at the LB from
//! causally-triggered transmissions) tracks `T_client` (the true response
//! latency). This module quantifies that claim for the reproduction:
//! sample-count ratios and distribution-level error between the two.

use crate::percentile::exact_percentile;

/// A comparison between an estimated latency sample set and ground truth.
#[derive(Debug, Clone)]
pub struct AccuracySummary {
    /// Number of estimated samples.
    pub estimate_count: usize,
    /// Number of ground-truth samples.
    pub truth_count: usize,
    /// Ratio `estimate_count / truth_count` (the paper's sample-cliff logic
    /// reasons about exactly this: a good timeout yields ≈1.0).
    pub sample_ratio: f64,
    /// Relative error of selected quantiles: `(q, est, truth, rel_err)`.
    pub quantile_errors: Vec<(f64, u64, u64, f64)>,
    /// Median of per-quantile absolute relative errors.
    pub median_rel_err: f64,
}

impl AccuracySummary {
    /// Compares `estimates` against `truth` (both in nanoseconds) at the
    /// given quantiles (defaults to the quartiles + p95 when empty).
    pub fn compare(estimates: &[u64], truth: &[u64], quantiles: &[f64]) -> AccuracySummary {
        let default_q = [0.25, 0.5, 0.75, 0.95];
        let qs: &[f64] = if quantiles.is_empty() {
            &default_q
        } else {
            quantiles
        };
        let mut quantile_errors = Vec::with_capacity(qs.len());
        let mut errs = Vec::with_capacity(qs.len());
        for &q in qs {
            let est = exact_percentile(estimates, q).unwrap_or(0);
            let tru = exact_percentile(truth, q).unwrap_or(0);
            let rel = if tru == 0 {
                if est == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (est as f64 - tru as f64).abs() / tru as f64
            };
            quantile_errors.push((q, est, tru, rel));
            errs.push(rel);
        }
        errs.sort_by(|a, b| a.total_cmp(b));
        let median_rel_err = if errs.is_empty() {
            0.0
        } else {
            errs[errs.len() / 2]
        };
        let sample_ratio = if truth.is_empty() {
            0.0
        } else {
            estimates.len() as f64 / truth.len() as f64
        };
        AccuracySummary {
            estimate_count: estimates.len(),
            truth_count: truth.len(),
            sample_ratio,
            quantile_errors,
            median_rel_err,
        }
    }

    /// True when the estimate distribution is within `tol` relative error
    /// at every compared quantile.
    pub fn within(&self, tol: f64) -> bool {
        self.quantile_errors.iter().all(|&(_, _, _, e)| e <= tol)
    }
}

impl core::fmt::Display for AccuracySummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "samples: est={} truth={} ratio={:.3}",
            self.estimate_count, self.truth_count, self.sample_ratio
        )?;
        for (q, est, tru, rel) in &self.quantile_errors {
            writeln!(
                f,
                "  p{:<4} est={:>10}ns truth={:>10}ns rel_err={:.3}",
                q * 100.0,
                est,
                tru,
                rel
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_zero_error() {
        let v: Vec<u64> = (1..1000).collect();
        let s = AccuracySummary::compare(&v, &v, &[]);
        assert_eq!(s.sample_ratio, 1.0);
        assert!(s.within(0.0001));
        assert_eq!(s.median_rel_err, 0.0);
    }

    #[test]
    fn biased_estimates_show_error() {
        let truth: Vec<u64> = (1..1000).map(|x| x * 100).collect();
        let est: Vec<u64> = truth.iter().map(|x| x * 2).collect();
        let s = AccuracySummary::compare(&est, &truth, &[0.5]);
        assert!(!s.within(0.5));
        assert!((s.quantile_errors[0].3 - 1.0).abs() < 0.01);
    }

    #[test]
    fn sample_ratio_reflects_counts() {
        let truth = vec![100; 100];
        let est = vec![100; 250];
        let s = AccuracySummary::compare(&est, &truth, &[0.5]);
        assert!((s.sample_ratio - 2.5).abs() < 1e-9);
        assert!(s.within(0.01)); // values agree even though counts differ
    }

    #[test]
    fn empty_truth_handled() {
        let s = AccuracySummary::compare(&[1, 2, 3], &[], &[0.5]);
        assert_eq!(s.truth_count, 0);
        assert_eq!(s.sample_ratio, 0.0);
        assert!(!s.within(10.0)); // infinite error at the quantile
    }

    #[test]
    fn display_renders() {
        let s = AccuracySummary::compare(&[1, 2, 3], &[1, 2, 3], &[0.5]);
        let out = s.to_string();
        assert!(out.contains("ratio=1.000"));
    }
}
