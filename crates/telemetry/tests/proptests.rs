//! Property-based tests for the measurement toolkit.

use proptest::prelude::*;

use telemetry::{exact_percentile, BinnedSeries, LogHistogram, P2Quantile, ScalarSeries};

proptest! {
    /// The log histogram's quantiles stay within its design relative error
    /// (≈3%, two sub-bucket widths) of exact quantiles, for arbitrary data.
    #[test]
    fn histogram_quantiles_bounded_error(
        values in proptest::collection::vec(1u64..1_000_000_000, 10..500),
        q in 0.01f64..0.99,
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let approx = h.quantile(q) as f64;
        let exact = exact_percentile(&values, q).unwrap() as f64;
        // Bucket resolution bound plus rank-rounding slack: compare against
        // the neighbouring exact quantiles too.
        let lo = exact_percentile(&values, (q - 0.05).max(0.0)).unwrap() as f64;
        let hi = exact_percentile(&values, (q + 0.05).min(1.0)).unwrap() as f64;
        let tolerance = 0.04 * exact.max(1.0);
        prop_assert!(
            approx >= lo - tolerance && approx <= hi + tolerance,
            "quantile({}) = {} outside [{}, {}] of exact {}",
            q, approx, lo, hi, exact
        );
    }

    /// Histogram count/min/max/mean are exact regardless of bucketing.
    #[test]
    fn histogram_moments_exact(values in proptest::collection::vec(0u64..1u64<<40, 1..300)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-3 * mean.max(1.0));
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        a in proptest::collection::vec(1u64..1u64<<30, 1..100),
        b in proptest::collection::vec(1u64..1u64<<30, 1..100),
    ) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hc = LogHistogram::new();
        for &v in &a { ha.record(v); hc.record(v); }
        for &v in &b { hb.record(v); hc.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }

    /// Exact percentile is monotone in q and bounded by min/max.
    #[test]
    fn exact_percentile_monotone(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut last = 0u64;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = exact_percentile(&values, q).unwrap();
            prop_assert!(v >= last || i == 0);
            last = v;
        }
        prop_assert_eq!(exact_percentile(&values, 0.0).unwrap(), *values.iter().min().unwrap());
        prop_assert_eq!(exact_percentile(&values, 1.0).unwrap(), *values.iter().max().unwrap());
    }

    /// P² stays within the sample range and is deterministic.
    #[test]
    fn p2_bounded_and_deterministic(values in proptest::collection::vec(0.0f64..1e9, 5..500)) {
        let run = || {
            let mut p = P2Quantile::new(0.9);
            for &v in &values {
                p.record(v);
            }
            p.value()
        };
        let v1 = run();
        let v2 = run();
        prop_assert_eq!(v1, v2);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v1 >= min - 1e-9 && v1 <= max + 1e-9, "{} not in [{}, {}]", v1, min, max);
    }

    /// BinnedSeries never loses observations: the merged histogram count
    /// equals the number of records.
    #[test]
    fn binned_series_conserves_counts(
        points in proptest::collection::vec((0u64..10_000_000, 1u64..1_000_000), 1..300),
        bin in 1_000u64..1_000_000,
    ) {
        let mut s = BinnedSeries::new(bin);
        for &(t, v) in &points {
            s.record(t, v);
        }
        prop_assert_eq!(s.merged().count(), points.len() as u64);
        let total: u64 = s.count_series().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, points.len() as u64);
    }

    /// ScalarSeries step lookup returns the last pushed value at or before
    /// the query (reference implementation comparison).
    #[test]
    fn scalar_series_lookup_matches_reference(
        deltas in proptest::collection::vec(1u64..1000, 1..50),
        queries in proptest::collection::vec(0u64..100_000, 1..50),
    ) {
        let mut s = ScalarSeries::new();
        let mut pts = Vec::new();
        let mut t = 0u64;
        for (i, &d) in deltas.iter().enumerate() {
            t += d;
            s.push(t, i as f64);
            pts.push((t, i as f64));
        }
        for &q in &queries {
            let expect = pts.iter().rev().find(|&&(pt, _)| pt <= q).map(|&(_, v)| v);
            prop_assert_eq!(s.value_at(q), expect);
        }
    }
}
