//! Property tests for the decision-journal NDJSON wire format over
//! *arbitrary* generated events — not just events captured from live
//! runs, which only ever exercise the value shapes the data plane
//! produces. The properties pin:
//!
//! * exact round-trip: `parse_event(write_event(ev)) == ev` for every
//!   variant, including adversarial bit-pattern floats (shortest-form
//!   `{:?}` printing must round-trip f64 exactly);
//! * canonical serialization: re-writing a parsed event reproduces the
//!   original line byte-for-byte (the NDJSON form is a function of the
//!   event, with no formatting drift);
//! * whole-document round-trip through `parse_ndjson`.

use proptest::prelude::*;

use telemetry::journal::{parse_event, parse_ndjson, write_event};
use telemetry::{JournalEvent, WeightCause};

/// Interned health-state wire names (the parser only accepts these).
const STATES: [&str; 4] = ["healthy", "suspect", "ejected", "probation"];
/// Interned transition-trigger wire names.
const TRIGGERS: [&str; 5] = [
    "silence",
    "abort_burst",
    "probe_silent",
    "probation_timeout",
    "samples_returned",
];

/// A finite f64 from an arbitrary bit pattern: adversarial mantissas,
/// subnormals, negative zero — everything except NaN/inf, which the
/// flat-JSON number lexer rejects by design (they never occur in
/// journaled values).
fn finite(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        f64::from_bits(bits & 0x000f_ffff_ffff_ffff) // clear exponent → subnormal
    }
}

/// A vector of adversarial finite floats.
fn float_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u64..u64::MAX, 0..6)
        .prop_map(|bits| bits.into_iter().map(finite).collect())
}

/// One arbitrary event of any of the 8 variants, via an integer
/// selector (the vendored proptest stub has no `prop_oneof!`).
fn journal_event() -> impl Strategy<Value = JournalEvent> {
    (
        0u8..8,
        0u64..u64::MAX,                   // at
        0usize..64,                       // backend-ish index
        (0u64..u64::MAX, 0u64..u64::MAX), // generic u64 payloads
        float_vec(),
        (
            proptest::collection::vec(0u64..1 << 20, 0..5),
            0u64..u64::MAX, // float bits / selector payload
        ),
    )
        .prop_map(|(sel, at, idx, (a, b), floats, (small_vec, fbits))| {
            let f = finite(fbits);
            match sel {
                0 => JournalEvent::Sample {
                    at,
                    backend: idx,
                    src_ip: a as u32,
                    src_port: b as u16,
                    delta: a,
                    t_lb: b,
                },
                1 => JournalEvent::EpochDecision {
                    at,
                    backend: idx,
                    chosen: idx % small_vec.len().max(1),
                    delta: a,
                    counts: small_vec,
                },
                2 => JournalEvent::WeightUpdate {
                    at,
                    cause: match a % 4 {
                        0 => WeightCause::Init,
                        1 => WeightCause::Controller,
                        2 => WeightCause::Gossip,
                        _ => WeightCause::Health,
                    },
                    victim: if b % 2 == 0 { Some(idx) } else { None },
                    moved: f.abs(),
                    weights: floats,
                },
                3 => JournalEvent::HealthTransition {
                    at,
                    backend: idx,
                    from: STATES[(a % 4) as usize],
                    to: STATES[(b % 4) as usize],
                    trigger: TRIGGERS[(a % 5) as usize],
                },
                4 => JournalEvent::GossipMerge {
                    at,
                    mix: f,
                    before: floats.clone(),
                    after: floats,
                },
                5 => JournalEvent::FlowRepin {
                    at,
                    src_ip: a as u32,
                    src_port: b as u16,
                    from: idx,
                    to: idx.wrapping_add(1) % 64,
                },
                6 => JournalEvent::NoBackend { at },
                _ => JournalEvent::ShardRemap {
                    at,
                    dst: a as u32,
                    before: small_vec.clone(),
                    after: small_vec,
                },
            }
        })
}

proptest! {
    /// write → parse is the identity on arbitrary events.
    #[test]
    fn write_parse_round_trips_any_event(ev in journal_event()) {
        let mut line = String::new();
        write_event(&mut line, &ev);
        let back = parse_event(&line)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(format!("{e}\n{line}")))?;
        prop_assert_eq!(&back, &ev, "line: {}", line);
    }

    /// parse → write reproduces the original bytes: the serialization is
    /// canonical, so captures diffed across runs can't drift on
    /// formatting (float shortest-form included).
    #[test]
    fn serialization_is_canonical(ev in journal_event()) {
        let mut first = String::new();
        write_event(&mut first, &ev);
        let back = parse_event(&first)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(format!("{e}\n{first}")))?;
        let mut second = String::new();
        write_event(&mut second, &back);
        prop_assert_eq!(&second, &first);
    }

    /// Whole documents survive the NDJSON round trip, including blank
    /// interior lines.
    #[test]
    fn ndjson_document_round_trips(
        evs in proptest::collection::vec(journal_event(), 0..12),
        blank_every in 2usize..5,
    ) {
        let mut doc = String::new();
        for (i, ev) in evs.iter().enumerate() {
            if i % blank_every == 0 {
                doc.push('\n'); // parse_ndjson skips blank lines
            }
            write_event(&mut doc, ev);
            doc.push('\n');
        }
        let back = parse_ndjson(&doc)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(back, evs);
    }
}

/// Hand-picked float edge cases the random sweep might miss: the exact
/// values whose shortest-form printing is historically fragile.
#[test]
fn float_shortest_form_edges_round_trip() {
    let edges: [f64; 10] = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE, // smallest normal
        f64::from_bits(1), // smallest subnormal
        f64::MAX,
        f64::MIN,
        0.1, // classic non-dyadic
        1.0 / 3.0,
        1e-308,
        9007199254740993.0_f64, // 2^53 + 1: not exactly representable
    ];
    for &v in &edges {
        let ev = JournalEvent::GossipMerge {
            at: 1,
            mix: v,
            before: vec![v],
            after: vec![v, v],
        };
        let mut line = String::new();
        write_event(&mut line, &ev);
        let back = parse_event(&line).unwrap_or_else(|e| panic!("{v:?}: {e}\n{line}"));
        assert_eq!(back, ev, "value {v:?} line {line}");
    }
}
