//! Maglev golden regression: the table layout and the packet-parse →
//! flow-hash → lookup pipeline are pinned to known-good values, so any
//! change to the permutation build, `splitmix64`, header parsing, or the
//! zero-copy parse path that silently re-shuffles flow placement fails
//! here instead of surfacing as mass connection resets in a rollout.

use std::net::Ipv4Addr;

use lbcore::MaglevTable;
use netpkt::{Addresses, FlowKey, MacAddr, Packet, TcpFlags, TcpHeader};

/// FNV-1a fold, same shape as the determinism trace hash.
fn fnv_fold(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// The fixed backend set used by the goldens: seven backends with
/// deliberately uneven weights (renormalization + turn-taking paths).
const GOLDEN_WEIGHTS: [f64; 7] = [1.0, 1.0, 2.0, 0.5, 3.0, 1.0, 0.25];

/// The full 4093-slot table for the fixed backend set hashes to a pinned
/// value. `lookup(i)` for `i < size` reads slot `i` directly, so this
/// covers every slot in build order.
#[test]
fn golden_table_4093_is_pinned() {
    let table = MaglevTable::build(&GOLDEN_WEIGHTS, 4093);
    let mut h = FNV_SEED;
    for i in 0..4093u64 {
        let backend = table.lookup(i) as u32;
        h = fnv_fold(h, &backend.to_le_bytes());
    }
    assert_eq!(
        h, 0x4b45_9965_960d_9981,
        "Maglev 4093-slot table layout changed"
    );
}

/// Builds the i-th golden packet: a deterministic spread of client
/// addresses and ports toward the VIP.
fn golden_packet(i: u64) -> Packet {
    Packet::build_tcp(
        Addresses {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
            dst_ip: Ipv4Addr::new(10, 99, 0, 1),
        },
        &TcpHeader {
            src_port: 1024 + (i % 60_000) as u16,
            dst_port: 11211,
            seq: i as u32,
            ack: 0,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 8192,
        },
        &[0u8; 16],
        64,
        i as u16,
    )
}

/// The end-to-end placement pipeline — build frame, fast-parse the
/// 4-tuple, stable-hash it, look it up — is pinned over 10k flows, so
/// the zero-copy parse rework provably routes every flow identically.
#[test]
fn golden_lookups_for_10k_flow_keys_are_pinned() {
    let table = MaglevTable::build(&GOLDEN_WEIGHTS, 4093);
    let mut h = FNV_SEED;
    for i in 0..10_000u64 {
        let pkt = golden_packet(i);
        let (key, flags) = FlowKey::parse_with_flags(&pkt.data).expect("golden frame parses");
        assert_eq!(flags, TcpFlags::ACK | TcpFlags::PSH);
        let backend = table.lookup(key.stable_hash()) as u32;
        h = fnv_fold(h, &backend.to_le_bytes());
    }
    assert_eq!(
        h, 0x8082_55dd_1877_0107,
        "flow-key parse/hash/lookup placement changed"
    );
}

/// The parse path used by the goldens agrees with the checksum-verifying
/// slow parse (same 4-tuple), tying the golden to both parsers.
#[test]
fn golden_fast_parse_agrees_with_verified_parse() {
    for i in (0..10_000u64).step_by(97) {
        let pkt = golden_packet(i);
        let (fast, _) = FlowKey::parse_with_flags(&pkt.data).expect("fast parse");
        let slow = FlowKey::parse(&pkt.data).expect("verified parse");
        assert_eq!(fast, slow);
    }
}
