//! Property-based tests for the paper's algorithms and their
//! infrastructure.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use netpkt::FlowKey;

use lbcore::ensemble::{CliffRule, EnsembleConfig};
use lbcore::{EnsembleTimeout, FixedTimeout, FlowTable, FlowTiming, MaglevTable, Weights};

/// A scripted flow-table operation (the proptest alphabet).
#[derive(Debug, Clone, Copy)]
enum FlowOp {
    /// Insert `port`'s flow pinned to `backend`.
    Insert { port: u16, backend: usize },
    /// Touch `port`'s flow (bump `last_seen`/`packets` if present).
    Touch { port: u16 },
    /// Remove `port`'s flow (FIN/RST path).
    Remove { port: u16 },
    /// Run the idle sweep.
    Sweep,
}

/// Weighted op mix (4:3:1:1 insert:touch:remove:sweep), expressed as a
/// `prop_map` over a selector because the vendored proptest stub has no
/// `prop_oneof!`.
fn flow_op() -> impl Strategy<Value = FlowOp> {
    (0u8..9, 1u16..64, 0usize..4).prop_map(|(sel, port, backend)| match sel {
        0..=3 => FlowOp::Insert { port, backend },
        4..=6 => FlowOp::Touch { port },
        7 => FlowOp::Remove { port },
        _ => FlowOp::Sweep,
    })
}

fn flow_key(port: u16) -> FlowKey {
    FlowKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        port,
        Ipv4Addr::new(10, 9, 9, 9),
        11211,
    )
}

fn fresh_timing() -> lbcore::EnsembleFlowState {
    EnsembleTimeout::new(EnsembleConfig::default()).new_flow(0)
}

/// Replays an op script against a fresh table; each op advances time by
/// one millisecond. Returns the table plus a shadow model of which port
/// is pinned to which backend.
fn replay_flow_ops(ops: &[FlowOp], capacity: usize) -> (FlowTable, Vec<Option<usize>>) {
    const MS: u64 = 1_000_000;
    let idle = 40 * MS;
    let mut t = FlowTable::with_capacity(idle, capacity);
    let mut model: Vec<Option<usize>> = vec![None; 64];
    let mut last_touch: Vec<u64> = vec![0; 64];
    let mut now = 0u64;
    for op in ops {
        now += MS;
        match *op {
            FlowOp::Insert { port, backend } => {
                // Re-insert of a live key keeps the original pin (tested
                // separately) but still counts as traffic on the flow.
                if model[port as usize].is_none() {
                    model[port as usize] = Some(backend);
                }
                last_touch[port as usize] = now;
                let e = t.insert(flow_key(port), backend, fresh_timing(), now);
                e.last_seen = now;
            }
            FlowOp::Touch { port } => {
                if let Some(e) = t.get_mut(&flow_key(port)) {
                    e.last_seen = now;
                    e.packets += 1;
                    last_touch[port as usize] = now;
                }
            }
            FlowOp::Remove { port } => {
                t.remove(&flow_key(port));
                model[port as usize] = None;
            }
            FlowOp::Sweep => {
                t.sweep(now);
                for p in 0..64 {
                    if model[p].is_some() && now.saturating_sub(last_touch[p]) > idle {
                        model[p] = None;
                    }
                }
            }
        }
    }
    (t, model)
}

/// Strictly increasing arrival times from positive gaps.
fn arrivals_from_gaps(gaps: &[u64]) -> Vec<u64> {
    let mut t = 0u64;
    let mut out = vec![0u64];
    for &g in gaps {
        t += g.max(1);
        out.push(t);
    }
    out
}

proptest! {
    /// Algorithm 1 invariant: the samples of a flow tile time exactly —
    /// the sum of all T_LB samples equals the span from the first batch
    /// start to the last batch start.
    #[test]
    fn fixed_timeout_samples_tile_time(
        gaps in proptest::collection::vec(1u64..2_000_000, 1..200),
        delta in 1_000u64..1_000_000,
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let alg = FixedTimeout::new(delta);
        let mut st = FlowTiming::first_packet(arrivals[0]);
        let mut total = 0u64;
        let mut last_batch_start = arrivals[0];
        for &t in &arrivals[1..] {
            if let Some(s) = alg.on_packet(&mut st, t) {
                total += s;
                last_batch_start = t;
            }
        }
        prop_assert_eq!(total, last_batch_start - arrivals[0]);
    }

    /// Samples are produced exactly at gaps strictly greater than δ.
    #[test]
    fn fixed_timeout_sample_iff_gap_exceeds_delta(
        gaps in proptest::collection::vec(1u64..500_000, 1..100),
        delta in 1u64..500_000,
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let alg = FixedTimeout::new(delta);
        let mut st = FlowTiming::first_packet(arrivals[0]);
        for (i, &t) in arrivals[1..].iter().enumerate() {
            let gap = t - arrivals[i];
            let got = alg.on_packet(&mut st, t);
            prop_assert_eq!(got.is_some(), gap > delta, "gap {} delta {}", gap, delta);
        }
    }

    /// Algorithm 2 invariant: over any packet stream, the per-timeout
    /// sample counts are non-increasing in δ (a sample at δᵢ₊₁ implies a
    /// sample at δᵢ) — the monotonicity the sample cliff relies on.
    #[test]
    fn ensemble_counts_monotone(
        gaps in proptest::collection::vec(1u64..5_000_000, 10..300),
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        // Huge epoch so counts never reset mid-run.
        let cfg = EnsembleConfig { epoch: u64::MAX / 2, ..EnsembleConfig::default() };
        let mut ens = EnsembleTimeout::new(cfg);
        let mut flow = ens.new_flow(arrivals[0]);
        for &t in &arrivals[1..] {
            let _ = ens.on_packet(&mut flow, t);
        }
        let counts = ens.epoch_counts();
        for w in counts.windows(2) {
            prop_assert!(w[0] >= w[1], "counts not monotone: {:?}", counts);
        }
    }

    /// The ensemble's reported samples equal a standalone FIXEDTIMEOUT
    /// run with the currently chosen δ, as long as the choice is stable
    /// (single epoch).
    #[test]
    fn ensemble_matches_fixed_within_epoch(
        gaps in proptest::collection::vec(1u64..300_000, 5..150),
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let cfg = EnsembleConfig { epoch: u64::MAX / 2, ..EnsembleConfig::default() };
        let delta0 = cfg.timeouts[0];
        let mut ens = EnsembleTimeout::new(cfg);
        let mut flow = ens.new_flow(arrivals[0]);
        let mut ens_samples = Vec::new();
        for &t in &arrivals[1..] {
            if let Some(s) = ens.on_packet(&mut flow, t) {
                ens_samples.push((t, s));
            }
        }
        let alg = FixedTimeout::new(delta0);
        let mut st = FlowTiming::first_packet(arrivals[0]);
        let mut fixed_samples = Vec::new();
        for &t in &arrivals[1..] {
            if let Some(s) = alg.on_packet(&mut st, t) {
                fixed_samples.push((t, s));
            }
        }
        prop_assert_eq!(ens_samples, fixed_samples);
    }

    /// Algorithm 2's epoch decision is the argmax cliff: under the
    /// paper's `ArgmaxRatio` rule, the chosen δₘ maximizes the
    /// (Laplace-smoothed) step ratio Nᵢ/Nᵢ₊₁ over the epoch's counts.
    /// The oracle counts are computed independently from the raw gaps —
    /// every instance shares `time_last_pkt`, so Nᵢ is just the number
    /// of consecutive gaps exceeding δᵢ.
    #[test]
    fn ensemble_decision_is_argmax_cliff(
        gaps in proptest::collection::vec(1u64..3_000_000, 20..200),
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let cfg = EnsembleConfig::default();
        let timeouts = cfg.timeouts.clone();
        let k = timeouts.len();
        let counts: Vec<u64> = timeouts
            .iter()
            .map(|&d| arrivals.windows(2).filter(|w| w[1] - w[0] > d).count() as u64)
            .collect();
        let total: u64 = counts.iter().sum();
        if total < cfg.min_epoch_samples {
            // Not enough evidence for a decision (the stub proptest has
            // no prop_assume; skipping the case is equivalent here).
            return Ok(());
        }
        // Same smoothing and first-max tie-break as the implementation.
        let ratio = |i: usize| (counts[i] as f64 + 1.0) / (counts[i + 1] as f64 + 1.0);
        let mut expect = 0;
        for i in 1..k - 1 {
            if ratio(i) > ratio(expect) {
                expect = i;
            }
        }
        // One epoch containing every arrival, then a sentinel packet in
        // the next epoch to trigger the boundary decision.
        let epoch = arrivals.last().unwrap() + 1;
        let mut ens = EnsembleTimeout::new(EnsembleConfig {
            epoch,
            rule: CliffRule::ArgmaxRatio,
            ..cfg
        });
        let mut flow = ens.new_flow(arrivals[0]);
        for &t in &arrivals[1..] {
            let _ = ens.on_packet(&mut flow, t);
        }
        prop_assert_eq!(ens.epoch_counts(), &counts[..], "oracle count mismatch");
        let _ = ens.on_packet(&mut flow, epoch);
        let d = ens.decisions().last().expect("boundary must decide");
        prop_assert_eq!(d.chosen, expect, "counts {:?}", &counts);
        prop_assert_eq!(d.delta, timeouts[expect]);
    }

    /// Maglev: shares track arbitrary weight vectors within 2 slots'
    /// resolution, and lookups stay in range.
    #[test]
    fn maglev_shares_track_weights(
        raw in proptest::collection::vec(1u32..1000, 2..8),
    ) {
        let weights: Vec<f64> = raw.iter().map(|&w| w as f64).collect();
        let total: f64 = weights.iter().sum();
        let table = MaglevTable::build(&weights, 4093);
        let shares = table.shares();
        for (w, s) in weights.iter().zip(&shares) {
            let expect = w / total;
            prop_assert!((s - expect).abs() < 0.03,
                "share {} for weight fraction {}", s, expect);
        }
        for h in 0..64u64 {
            prop_assert!(table.lookup(h.wrapping_mul(0x9e3779b97f4a7c15)) < weights.len());
        }
    }

    /// Maglev consistency: growing one backend's weight by a small amount
    /// never remaps more than ~3x that fraction of slots.
    #[test]
    fn maglev_disruption_bounded(
        n in 2usize..6,
        bump_pct in 1u32..20,
    ) {
        let before = vec![1.0; n];
        let mut after = before.clone();
        after[0] *= 1.0 + bump_pct as f64 / 100.0;
        let a = MaglevTable::build(&before, 4093);
        let b = MaglevTable::build(&after, 4093);
        let moved = a.slots_changed(&b) as f64 / a.len() as f64;
        // The weight-share change of backend 0.
        let share_delta = after[0] / after.iter().sum::<f64>() - 1.0 / n as f64;
        prop_assert!(moved <= 3.0 * share_delta + 0.02,
            "moved {} for share delta {}", moved, share_delta);
    }

    /// Weights invariants under arbitrary operation sequences: sum stays
    /// 1, every entry ≥ 0, and with a floor, every entry ≥ floor.
    #[test]
    fn weights_invariants_under_random_ops(
        n in 2usize..8,
        ops in proptest::collection::vec((0u8..3, 0usize..8, 0.0f64..0.5), 1..50),
    ) {
        let floor = 0.01;
        let mut w = Weights::equal(n, floor);
        for (op, idx, x) in ops {
            let i = idx % n;
            match op {
                0 => { w.shift_from(i, x.min(0.49)); }
                1 => { w.scale(i, 0.1 + x); }
                _ => {
                    let target: Vec<f64> = (0..n).map(|j| if j == i { 1.0 + x } else { 1.0 }).collect();
                    w.set(&target);
                }
            }
            let sum: f64 = w.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum drifted to {}", sum);
            for j in 0..n {
                prop_assert!(w.get(j) >= floor - 1e-9, "entry {} below floor: {}", j, w.get(j));
            }
        }
    }

    /// Flow-table affinity invariant: under arbitrary insert/touch/
    /// remove/sweep sequences that never approach capacity, every flow
    /// the shadow model says is live is present and still pinned to the
    /// backend of its *first* insert (affinity never silently changes),
    /// and no removed/expired flow lingers.
    #[test]
    fn flow_table_affinity_under_random_ops(
        ops in proptest::collection::vec(flow_op(), 1..120),
    ) {
        // Capacity 128 > 64 possible ports: eviction can never fire, so
        // the shadow model is exact.
        let (mut t, model) = replay_flow_ops(&ops, 128);
        prop_assert_eq!(t.stats.evicted, 0);
        for port in 1u16..64 {
            match (model[port as usize], t.get_mut(&flow_key(port))) {
                (Some(backend), Some(e)) => prop_assert_eq!(
                    e.backend, backend,
                    "port {} affinity moved", port
                ),
                (None, None) => {}
                (Some(_), None) => prop_assert!(false, "live flow {} lost", port),
                (None, Some(_)) => prop_assert!(false, "dead flow {} lingers", port),
            }
        }
    }

    /// Determinism of the whole table (eviction included): replaying the
    /// identical op sequence — this time against a small capacity so the
    /// probe-window eviction path fires — yields identical tables.
    #[test]
    fn flow_table_state_is_a_pure_function_of_ops(
        ops in proptest::collection::vec(flow_op(), 1..120),
    ) {
        let (mut a, _) = replay_flow_ops(&ops, 8);
        let (mut b, _) = replay_flow_ops(&ops, 8);
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.stats.inserted, b.stats.inserted);
        prop_assert_eq!(a.stats.evicted, b.stats.evicted);
        prop_assert_eq!(a.stats.expired, b.stats.expired);
        for port in 1u16..64 {
            let ea = a.get_mut(&flow_key(port)).map(|e| (e.backend, e.last_seen, e.packets));
            let eb = b.get_mut(&flow_key(port)).map(|e| (e.backend, e.last_seen, e.packets));
            prop_assert_eq!(ea, eb, "tables diverged at port {}", port);
        }
    }

    /// Ejection-aware renormalization, for *every* ejection subset of
    /// arbitrary weight vectors: survivors sum to 1 and respect the
    /// floor, ejected backends get exactly 0.0, and the all-ejected case
    /// reports failure without touching the weights — never a panic or
    /// a division by zero.
    #[test]
    fn ejection_renormalization_for_every_subset(
        raw in proptest::collection::vec(0.0f64..10.0, 2..7),
    ) {
        let n = raw.len();
        let floor = 0.02;
        for mask_bits in 0u32..(1u32 << n) {
            let mask: Vec<bool> = (0..n).map(|b| mask_bits & (1 << b) != 0).collect();
            let mut w = Weights::equal(n, floor);
            let before: Vec<f64> = w.as_slice().to_vec();
            let ok = w.set_with_ejections(&raw, &mask);
            let survivors = mask.iter().filter(|&&e| !e).count();
            prop_assert_eq!(ok, survivors > 0, "wrong verdict for mask {:?}", mask);
            if !ok {
                prop_assert_eq!(w.as_slice(), &before[..], "failed set must not mutate");
                continue;
            }
            let sum: f64 = w.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {} for mask {:?}", sum, mask);
            for b in 0..n {
                if mask[b] {
                    prop_assert_eq!(
                        w.get(b).to_bits(), 0.0f64.to_bits(),
                        "ejected backend {} kept weight {}", b, w.get(b)
                    );
                } else {
                    prop_assert!(
                        w.get(b) >= floor - 1e-9,
                        "survivor {} below floor: {}", b, w.get(b)
                    );
                }
            }
        }
    }

    /// Gossip merge, for *every* ejection subset of arbitrary local and
    /// peer vectors: the merged weights stay normalized (sum 1), ejected
    /// backends stay at exactly 0.0, survivors respect the floor, and the
    /// all-ejected case refuses without mutating — the invariant the
    /// multi-LB tier relies on when shards exchange learned weights while
    /// disagreeing about backend health.
    #[test]
    fn gossip_merge_normalized_for_every_ejection_subset(
        local_raw in proptest::collection::vec(0.0f64..10.0, 2..6),
        peer_a in proptest::collection::vec(0.0f64..10.0, 2..6),
        peer_b in proptest::collection::vec(0.0f64..10.0, 2..6),
        mix_pct in 0u32..=100,
    ) {
        let n = local_raw.len();
        let floor = 0.02;
        let mix = mix_pct as f64 / 100.0;
        for mask_bits in 0u32..(1u32 << n) {
            let mask: Vec<bool> = (0..n).map(|b| mask_bits & (1 << b) != 0).collect();
            let survivors = mask.iter().filter(|&&e| !e).count();
            let mut w = Weights::equal(n, floor);
            if survivors > 0 {
                w.set_with_ejections(&local_raw, &mask);
            }
            let before: Vec<f64> = w.as_slice().to_vec();
            // Peers of the wrong length must be skipped, not merged.
            let peers: Vec<&[f64]> = vec![&peer_a, &peer_b];
            let changed = lbcore::merge_weights(&mut w, &peers, mix, &mask);
            let usable_peers = peers.iter().filter(|p| p.len() == n).count();
            if survivors == 0 || usable_peers == 0 || mix == 0.0 {
                prop_assert!(!changed, "merge claimed change for mask {:?}", mask);
                prop_assert_eq!(w.as_slice(), &before[..], "no-op merge mutated");
                continue;
            }
            let sum: f64 = w.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {} for mask {:?}", sum, mask);
            for b in 0..n {
                if mask[b] {
                    prop_assert_eq!(
                        w.get(b).to_bits(), 0.0f64.to_bits(),
                        "gossip resurrected ejected backend {}", b
                    );
                } else {
                    prop_assert!(
                        w.get(b) >= floor - 1e-9,
                        "survivor {} below floor after merge: {}", b, w.get(b)
                    );
                }
            }
        }
    }

    /// The flat-head rule never selects a timeout with zero samples while
    /// a nonzero-count timeout exists below it.
    #[test]
    fn flathead_never_picks_dead_timeout(
        gaps in proptest::collection::vec(1u64..3_000_000, 50..400),
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let cfg = EnsembleConfig {
            epoch: 10_000_000, // 10 ms epochs → several decisions
            rule: CliffRule::FlatHead { rho: 1.5 },
            ..EnsembleConfig::default()
        };
        let mut ens = EnsembleTimeout::new(cfg);
        let mut flow = ens.new_flow(arrivals[0]);
        for &t in &arrivals[1..] {
            let _ = ens.on_packet(&mut flow, t);
        }
        // All decisions must point at one of the configured timeouts.
        for d in ens.decisions() {
            prop_assert!(d.chosen < ens.k());
        }
    }
}
