//! Algorithm 2 of the paper: `ENSEMBLETIMEOUT` with sample-cliff detection.
//!
//! One `FIXEDTIMEOUT` instance cannot know the right δ: it depends on the
//! propagation delay, the flow's share of the bottleneck, and the client's
//! transmission pattern, all of which drift. Algorithm 2 runs k instances
//! with exponentially spaced timeouts simultaneously and exploits the
//! asymmetry of their failure modes:
//!
//! * δ too **low** → *extra* (erroneously low) samples,
//! * δ too **high** → *missing* samples (batches merge),
//!
//! so over an epoch E, the per-timeout sample counts N₁ ≥ N₂ ≥ … ≥ Nₖ drop
//! sharply — a *cliff* — right after the best timeout. At each epoch
//! boundary the algorithm picks δₘ at the largest Nᵢ/Nᵢ₊₁ ratio and uses it
//! to report samples during the next epoch.

use crate::fixed_timeout::FixedTimeout;
use crate::Nanos;

/// How the epoch-boundary decision picks δₘ from the counts N₁…Nₖ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CliffRule {
    /// The paper's rule (Algorithm 2, line 8): m = argmaxᵢ Nᵢ/Nᵢ₊₁.
    ///
    /// Correct when the count profile is flat-then-cliff, as for the
    /// backlogged window-limited flow of Fig. 2. For request/response
    /// traffic whose batch gaps *are* the (widely distributed) response
    /// latencies, the counts decay smoothly and the largest ratio sits in
    /// the far tail — the rule then picks a δ so large that batches merge
    /// and samples become garbage (a failure mode this reproduction
    /// documents in EXPERIMENTS.md).
    ArgmaxRatio,
    /// Robust variant: pick the *start of the flat plateau* — the smallest
    /// i whose step ratio Nᵢ/Nᵢ₊₁ drops to ≤ `rho` (i.e., just past the
    /// split-inflation cliff). Falls back to the paper's rule when no
    /// step is flat.
    FlatHead {
        /// Flatness threshold (e.g. 1.5).
        rho: f64,
    },
}

/// Configuration for [`EnsembleTimeout`].
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// The candidate timeouts δ₁ < δ₂ < … < δₖ, in nanoseconds.
    pub timeouts: Vec<Nanos>,
    /// Epoch length E over which sample counts are accumulated.
    pub epoch: Nanos,
    /// The decision rule at epoch boundaries.
    pub rule: CliffRule,
    /// Keep the previous δₑ when an epoch produced fewer samples than
    /// this (not enough evidence to re-decide).
    pub min_epoch_samples: u64,
}

impl Default for EnsembleConfig {
    /// The paper's parameters: δ = 64 µs, 128 µs, …, 4 ms (k = 7),
    /// E = 64 ms, argmax-ratio cliff detection.
    fn default() -> Self {
        EnsembleConfig {
            timeouts: (0..7).map(|i| 64_000u64 << i).collect(),
            epoch: 64_000_000,
            rule: CliffRule::ArgmaxRatio,
            min_epoch_samples: 8,
        }
    }
}

impl EnsembleConfig {
    /// The robust configuration used by the latency-aware LB: paper
    /// timeouts and epoch, flat-head cliff detection.
    pub fn robust() -> EnsembleConfig {
        EnsembleConfig {
            rule: CliffRule::FlatHead { rho: 1.5 },
            ..EnsembleConfig::default()
        }
    }

    /// Validates and returns the number of timeouts k.
    fn validate(&self) -> usize {
        assert!(
            self.timeouts.len() >= 2,
            "ensemble needs at least two timeouts"
        );
        assert!(self.epoch > 0, "epoch must be positive");
        assert!(
            self.timeouts.windows(2).all(|w| w[0] < w[1]),
            "timeouts must be strictly increasing"
        );
        self.timeouts.len()
    }
}

/// Per-flow state for the ensemble: one shared `time_last_pkt` plus one
/// `time_last_batch` per timeout (the paper's `f.time_last_batchᵢ`).
#[derive(Debug, Clone)]
pub struct EnsembleFlowState {
    /// Arrival time of the flow's most recent packet.
    time_last_pkt: Nanos,
    /// Per-timeout batch anchors.
    time_last_batch: Vec<Nanos>,
}

impl EnsembleFlowState {
    /// Initializes state at the flow's first observed packet.
    pub fn first_packet(now: Nanos, k: usize) -> EnsembleFlowState {
        EnsembleFlowState {
            time_last_pkt: now,
            time_last_batch: vec![now; k],
        }
    }
}

/// A record of one epoch decision, kept for experiment introspection and
/// the decision journal.
#[derive(Debug, Clone)]
pub struct EpochDecision {
    /// When the decision was made (the epoch boundary).
    pub at: Nanos,
    /// Index of the chosen timeout.
    pub chosen: usize,
    /// The chosen timeout value in nanoseconds.
    pub delta: Nanos,
    /// The per-timeout sample counts N₁…Nₖ the decision was made from.
    pub counts: Vec<u64>,
}

/// Algorithm 2: the ensemble estimator. One instance per LB (sample counts
/// are aggregated across flows, as in the paper's LB-wide implementation).
#[derive(Debug, Clone)]
pub struct EnsembleTimeout {
    cfg: EnsembleConfig,
    algs: Vec<FixedTimeout>,
    /// Sample counts Nᵢ for the current epoch.
    counts: Vec<u64>,
    /// Index of the epoch the counts belong to.
    epoch_index: u64,
    /// Index of δₑ, the timeout whose samples are reported this epoch.
    chosen: usize,
    /// Epoch decisions taken so far (for figures; bounded by run length).
    decisions: Vec<EpochDecision>,
}

impl EnsembleTimeout {
    /// Creates the estimator; the initial δₑ is the smallest timeout, as
    /// the cheapest way to start (it will correct at the first boundary).
    pub fn new(cfg: EnsembleConfig) -> EnsembleTimeout {
        cfg.validate();
        let algs = cfg
            .timeouts
            .iter()
            .map(|&d| FixedTimeout::new(d))
            .collect::<Vec<_>>();
        let k = algs.len();
        EnsembleTimeout {
            cfg,
            algs,
            counts: vec![0; k],
            epoch_index: 0,
            chosen: 0,
            decisions: Vec::new(),
        }
    }

    /// Number of candidate timeouts.
    pub fn k(&self) -> usize {
        self.algs.len()
    }

    /// The currently selected timeout δₑ in nanoseconds.
    pub fn current_delta(&self) -> Nanos {
        self.cfg.timeouts[self.chosen]
    }

    /// Per-timeout sample counts accumulated in the current epoch.
    pub fn epoch_counts(&self) -> &[u64] {
        &self.counts
    }

    /// All epoch decisions taken so far.
    pub fn decisions(&self) -> &[EpochDecision] {
        &self.decisions
    }

    /// Allocates fresh per-flow state.
    pub fn new_flow(&self, now: Nanos) -> EnsembleFlowState {
        EnsembleFlowState::first_packet(now, self.algs.len())
    }

    /// Processes a packet arrival for one flow. Returns `Some(T_LB)` when
    /// the *currently chosen* timeout produces a sample. Internally updates
    /// all k instances and, at epoch boundaries, re-selects δₑ via the
    /// sample cliff.
    pub fn on_packet(&mut self, f: &mut EnsembleFlowState, now: Nanos) -> Option<Nanos> {
        // Epoch boundary first (the paper runs it on the first packet of a
        // new epoch, before reporting).
        let epoch_now = now / self.cfg.epoch;
        if epoch_now != self.epoch_index {
            self.finish_epoch(now);
            self.epoch_index = epoch_now;
        }

        let mut chosen_sample = None;
        let gap = now.saturating_sub(f.time_last_pkt);
        for (i, alg) in self.algs.iter().enumerate() {
            // Inline FIXEDTIMEOUT sharing time_last_pkt across instances.
            if gap > alg.delta {
                let t_lb = now.saturating_sub(f.time_last_batch[i]);
                f.time_last_batch[i] = now;
                self.counts[i] += 1;
                if i == self.chosen {
                    chosen_sample = Some(t_lb);
                }
            }
        }
        f.time_last_pkt = now;
        chosen_sample
    }

    /// Applies the sample-cliff rule and resets counts.
    fn finish_epoch(&mut self, now: Nanos) {
        let k = self.counts.len();
        let total: u64 = self.counts.iter().sum();
        if total >= self.cfg.min_epoch_samples {
            // Laplace smoothing (+1) keeps ratios finite when a larger
            // timeout produced zero samples, preserving the ordering.
            let ratio =
                |i: usize| (self.counts[i] as f64 + 1.0) / (self.counts[i + 1] as f64 + 1.0);
            let argmax = || {
                let mut best_i = self.chosen;
                let mut best_ratio = f64::MIN;
                for i in 0..k - 1 {
                    if ratio(i) > best_ratio {
                        best_ratio = ratio(i);
                        best_i = i;
                    }
                }
                best_i
            };
            let best_i = match self.cfg.rule {
                // m = argmaxᵢ Nᵢ / Nᵢ₊₁ (paper, Algorithm 2 line 8).
                CliffRule::ArgmaxRatio => argmax(),
                // Smallest i whose step is flat: the first timeout past
                // the split-inflation cliff.
                CliffRule::FlatHead { rho } => (0..k - 1)
                    .find(|&i| self.counts[i] > 0 && ratio(i) <= rho)
                    .unwrap_or_else(argmax),
            };
            self.chosen = best_i;
            self.decisions.push(EpochDecision {
                at: now,
                chosen: best_i,
                delta: self.cfg.timeouts[best_i],
                counts: self.counts.clone(),
            });
        }
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: Nanos = 1_000;
    const MS: Nanos = 1_000_000;

    /// Generates a periodic batched arrival process: batches of
    /// `batch_len` packets spaced `intra` apart, with batch starts every
    /// `period`, from `start` until `end`.
    fn batched_arrivals(
        start: Nanos,
        end: Nanos,
        period: Nanos,
        batch_len: u64,
        intra: Nanos,
    ) -> Vec<Nanos> {
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            for i in 0..batch_len {
                out.push(t + i * intra);
            }
            t += period;
        }
        out
    }

    fn feed(ens: &mut EnsembleTimeout, arrivals: &[Nanos]) -> Vec<(Nanos, Nanos)> {
        let mut flow = ens.new_flow(arrivals[0]);
        let mut samples = Vec::new();
        for &t in &arrivals[1..] {
            if let Some(s) = ens.on_packet(&mut flow, t) {
                samples.push((t, s));
            }
        }
        samples
    }

    #[test]
    fn defaults_match_paper() {
        let cfg = EnsembleConfig::default();
        assert_eq!(cfg.timeouts.len(), 7);
        assert_eq!(cfg.timeouts[0], 64 * US);
        // The paper quotes "δ₇ = 4 ms"; exact doubling from 64 µs gives
        // 4096 µs, which is what "4 ms" rounds from.
        assert_eq!(cfg.timeouts[6], 4096 * US);
        assert_eq!(cfg.epoch, 64 * MS);
    }

    #[test]
    fn converges_to_separating_timeout() {
        // Intra-batch gap 90 µs, inter-batch period 1 ms: timeouts 64 µs
        // splits batches; 128/256/512 µs separate correctly; 1–4 ms merge.
        // After the first epoch the cliff should sit in the separating band.
        let mut ens = EnsembleTimeout::new(EnsembleConfig::default());
        let arrivals = batched_arrivals(0, 200 * MS, MS, 4, 90 * US);
        let _ = feed(&mut ens, &arrivals);
        assert!(!ens.decisions().is_empty());
        let last = ens.decisions().last().unwrap();
        assert!(
            (128 * US..=512 * US).contains(&last.delta),
            "chose {} which does not separate 90us from 1ms",
            last.delta
        );
    }

    #[test]
    fn chosen_timeout_reports_true_rtt() {
        let mut ens = EnsembleTimeout::new(EnsembleConfig::default());
        let arrivals = batched_arrivals(0, 500 * MS, MS, 4, 20 * US);
        let samples = feed(&mut ens, &arrivals);
        // Ignore the first epoch (δₑ still defaulted); after convergence
        // samples must equal the 1 ms batch period.
        let late: Vec<Nanos> = samples
            .iter()
            .filter(|&&(t, _)| t > 128 * MS)
            .map(|&(_, s)| s)
            .collect();
        assert!(!late.is_empty());
        let exact = late.iter().filter(|&&s| s == MS).count();
        assert!(
            exact as f64 >= 0.9 * late.len() as f64,
            "only {}/{} samples equal the true RTT",
            exact,
            late.len()
        );
    }

    #[test]
    fn tracks_rtt_increase() {
        // RTT (batch period) jumps from 500 µs to 2 ms halfway: the chosen
        // timeout must move upward across the change (Fig. 2(b)).
        let mut ens = EnsembleTimeout::new(EnsembleConfig::default());
        let mut arrivals = batched_arrivals(0, 300 * MS, 500 * US, 3, 30 * US);
        arrivals.extend(batched_arrivals(300 * MS, 600 * MS, 2 * MS, 3, 100 * US));
        let samples = feed(&mut ens, &arrivals);
        let early: Vec<Nanos> = samples
            .iter()
            .filter(|&&(t, _)| (100 * MS..300 * MS).contains(&t))
            .map(|&(_, s)| s)
            .collect();
        let late: Vec<Nanos> = samples
            .iter()
            .filter(|&&(t, _)| t > 450 * MS)
            .map(|&(_, s)| s)
            .collect();
        let med = |v: &[Nanos]| {
            let mut s = v.to_vec();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(!early.is_empty() && !late.is_empty());
        assert_eq!(med(&early), 500 * US, "early estimates off");
        assert_eq!(
            med(&late),
            2 * MS,
            "late estimates did not track the increase"
        );
    }

    #[test]
    fn counts_reset_each_epoch() {
        let mut ens = EnsembleTimeout::new(EnsembleConfig::default());
        let arrivals = batched_arrivals(0, 96 * MS, MS, 2, 10 * US);
        let _ = feed(&mut ens, &arrivals);
        // We are in the middle of the second epoch: counts reflect only it.
        let total: u64 = ens.epoch_counts().iter().sum();
        assert!(total > 0);
        assert!(total < 200, "counts were never reset");
    }

    #[test]
    fn multiple_flows_share_the_ensemble() {
        // Two flows with the same batch period: per-flow state is separate,
        // counts aggregate, and both produce correct samples.
        let mut ens = EnsembleTimeout::new(EnsembleConfig::default());
        let a = batched_arrivals(0, 300 * MS, MS, 3, 20 * US);
        let b = batched_arrivals(137 * US, 300 * MS, MS, 3, 20 * US);
        let mut fa = ens.new_flow(a[0]);
        let mut fb = ens.new_flow(b[0]);
        let (mut ia, mut ib) = (1usize, 1usize);
        let mut good = 0u64;
        let mut all = 0u64;
        // Merge the two arrival streams in time order.
        while ia < a.len() || ib < b.len() {
            let (t, f) = if ib >= b.len() || (ia < a.len() && a[ia] <= b[ib]) {
                ia += 1;
                (a[ia - 1], &mut fa)
            } else {
                ib += 1;
                (b[ib - 1], &mut fb)
            };
            if let Some(s) = ens.on_packet(f, t) {
                if t > 128 * MS {
                    all += 1;
                    if s == MS {
                        good += 1;
                    }
                }
            }
        }
        assert!(all > 0);
        assert!(good as f64 >= 0.9 * all as f64, "{good}/{all} correct");
    }

    #[test]
    fn flathead_beats_argmax_on_smooth_gap_distributions() {
        // Request/response-like traffic: inter-batch gaps ARE the response
        // latencies, drawn from a smooth distribution spanning the timeout
        // grid (100 µs .. 2 ms, heavy on the low end). The argmax rule
        // latches onto the tail; flat-head stays at the head.
        let mut gaps = Vec::new();
        for i in 0..4000u64 {
            // Deterministic smooth mixture: mostly 100-400 µs, a tail to 2 ms.
            let x = (i * 2654435761) % 1000;
            let gap = if x < 700 {
                100_000 + x * 400 // 100–380 µs
            } else if x < 950 {
                400_000 + (x - 700) * 2_400 // 0.4–1.0 ms
            } else {
                1_000_000 + (x - 950) * 20_000 // 1–2 ms
            };
            gaps.push(gap);
        }
        let arrivals: Vec<Nanos> = {
            let mut t = 0;
            let mut out = vec![0];
            for g in &gaps {
                t += g;
                out.push(t);
            }
            out
        };
        let run = |rule: CliffRule| {
            let mut ens = EnsembleTimeout::new(EnsembleConfig {
                rule,
                ..EnsembleConfig::default()
            });
            let mut flow = ens.new_flow(arrivals[0]);
            for &t in &arrivals[1..] {
                let _ = ens.on_packet(&mut flow, t);
            }
            let med = |v: &mut Vec<Nanos>| {
                v.sort_unstable();
                v[v.len() / 2]
            };
            let mut chosen: Vec<Nanos> = ens.decisions().iter().map(|d| d.delta).collect();
            med(&mut chosen)
        };
        let argmax_delta = run(CliffRule::ArgmaxRatio);
        let flathead_delta = run(CliffRule::FlatHead { rho: 1.5 });
        // Every gap exceeds 64 µs, so δ = 64 µs yields exactly one sample
        // per true gap — the correct choice. Flat-head finds it; argmax
        // climbs the tail.
        assert_eq!(flathead_delta, 64 * US, "flat-head should sit at the head");
        assert!(
            argmax_delta >= 4 * flathead_delta,
            "argmax ({argmax_delta}) should have chased the tail"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_timeouts_rejected() {
        let _ = EnsembleTimeout::new(EnsembleConfig {
            timeouts: vec![128 * US, 64 * US],
            ..EnsembleConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_timeout_rejected() {
        let _ = EnsembleTimeout::new(EnsembleConfig {
            timeouts: vec![64 * US],
            ..EnsembleConfig::default()
        });
    }
}
