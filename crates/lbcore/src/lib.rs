//! The paper's contribution: in-band feedback control for load balancers.
//!
//! This crate implements, exactly as specified in *Load Balancers Need
//! In-Band Feedback Control* (HotNets '22):
//!
//! * **Algorithm 1 — [`fixed_timeout::FixedTimeout`]**: segments a flow's
//!   client→server packets into batches using a fixed inter-batch timeout
//!   δ; the gap between the first packets of successive batches is an
//!   estimate `T_LB` of the flow's response latency.
//! * **Algorithm 2 — [`ensemble::EnsembleTimeout`]**: runs an ensemble of
//!   exponentially spaced timeouts (δ₁ = 64 µs … δ₇ = 4 ms), counts samples
//!   per timeout over an epoch (E = 64 ms), and picks the timeout at the
//!   largest *sample cliff* (argmaxᵢ Nᵢ/Nᵢ₊₁) for the next epoch.
//! * **The paper's controller — [`controller::AlphaShift`]**: moves a fixed
//!   fraction α = 10% of traffic away from the highest-latency backend,
//!   spread equally over the others.
//!
//! plus the infrastructure a deployable LB needs around them:
//!
//! * **[`maglev::MaglevTable`]**: the Maglev consistent-hashing table
//!   (NSDI '16) used by the paper's Cilium/XDP testbed, extended with
//!   weighted slot allocation so the controller can express traffic shares.
//! * **[`flow_table::FlowTable`]**: per-connection affinity with idle
//!   expiry — an existing connection keeps its backend even as weights move.
//! * **[`estimator::BackendEstimator`]**: per-backend latency aggregation
//!   (EWMA and a streaming p95) feeding the controllers.
//! * **Alternative controllers** (§5 open question 4): AIMD and
//!   latency-proportional weighting, for the controller-comparison
//!   ablation.
//! * **[`gossip::merge_weights`]**: mask-respecting weight-gossip merge
//!   for a sharded LB tier, where each instance learns from only its own
//!   ECMP flow subset (partial visibility).
//!
//! Everything here is simulator-agnostic: inputs are packet timestamps and
//! flow keys; outputs are latency samples and weight vectors. The
//! `lb-dataplane` crate binds it to the network simulator.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod ensemble;
pub mod estimator;
pub mod fixed_timeout;
pub mod flow_table;
pub mod gossip;
pub mod health;
pub mod maglev;
pub mod weights;

pub use controller::{AimdController, AlphaShift, Controller, ProportionalController};
pub use ensemble::{EnsembleConfig, EnsembleFlowState, EnsembleTimeout};
pub use estimator::BackendEstimator;
pub use fixed_timeout::{FixedTimeout, FlowTiming};
pub use flow_table::{FlowEntry, FlowTable};
pub use gossip::{merge_weights, GossipConfig};
pub use health::{HealthConfig, HealthState, HealthTracker, HealthTransition, HealthTrigger};
pub use maglev::MaglevTable;
pub use weights::Weights;

/// Simulated time alias used throughout (nanoseconds since run start).
pub type Nanos = u64;
