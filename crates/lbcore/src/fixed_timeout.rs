//! Algorithm 1 of the paper: `FIXEDTIMEOUT`.
//!
//! Executed at the LB on every client→server packet of a flow. Packets are
//! grouped into *batches*: a packet that arrives more than δ after the
//! flow's previous packet starts a new batch, and the time between the
//! first packets of successive batches is reported as an estimate `T_LB`
//! of the flow's response latency.
//!
//! The algorithm exploits *causally-triggered transmissions*: a
//! flow-control-limited client exhausts its quota, pauses, and resumes
//! only when a response arrives — so the pause→resume edge marks one
//! request/response round trip, observable without ever seeing a response.

use crate::Nanos;

/// Per-flow timing state shared by Algorithm 1 and Algorithm 2 (the paper's
/// `f.time_last_pkt` / `f.time_last_batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTiming {
    /// Arrival time of the flow's most recent packet.
    pub time_last_pkt: Nanos,
    /// Arrival time of the first packet of the current batch.
    pub time_last_batch: Nanos,
}

impl FlowTiming {
    /// Initializes state at the flow's first observed packet; the first
    /// packet never yields a sample.
    pub fn first_packet(now: Nanos) -> FlowTiming {
        FlowTiming {
            time_last_pkt: now,
            time_last_batch: now,
        }
    }
}

/// Algorithm 1: a fixed inter-batch timeout δ.
///
/// The struct is just the parameter; per-flow state lives in [`FlowTiming`]
/// so one configured instance serves any number of flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedTimeout {
    /// The inter-batch timeout δ, in nanoseconds.
    pub delta: Nanos,
}

impl FixedTimeout {
    /// Creates the algorithm with timeout δ (nanoseconds).
    pub fn new(delta: Nanos) -> FixedTimeout {
        assert!(delta > 0, "timeout must be positive");
        FixedTimeout { delta }
    }

    /// Processes one packet arrival for a flow; returns `Some(T_LB)` when
    /// the packet starts a new batch (a fresh response-latency sample),
    /// `None` otherwise. This is the body of Algorithm 1, line for line.
    pub fn on_packet(&self, f: &mut FlowTiming, now: Nanos) -> Option<Nanos> {
        let mut t_lb = None;
        if now.saturating_sub(f.time_last_pkt) > self.delta {
            // New batch: record response latency.
            t_lb = Some(now.saturating_sub(f.time_last_batch));
            f.time_last_batch = now;
        }
        f.time_last_pkt = now;
        t_lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: Nanos = 1_000;
    const MS: Nanos = 1_000_000;

    /// Feeds packet arrival times; collects the samples produced.
    fn run(delta: Nanos, arrivals: &[Nanos]) -> Vec<Nanos> {
        let alg = FixedTimeout::new(delta);
        let mut out = Vec::new();
        let mut state = FlowTiming::first_packet(arrivals[0]);
        for &t in &arrivals[1..] {
            if let Some(s) = alg.on_packet(&mut state, t) {
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn clean_batches_yield_true_rtt() {
        // Batches of 3 packets 10 µs apart, batches spaced 1 ms apart
        // (first-packet to first-packet): T_LB should be exactly 1 ms.
        let mut arrivals = Vec::new();
        for batch in 0..5u64 {
            for i in 0..3u64 {
                arrivals.push(batch * MS + i * 10 * US);
            }
        }
        let samples = run(100 * US, &arrivals);
        assert_eq!(samples, vec![MS; 4]);
    }

    #[test]
    fn too_low_timeout_reports_intra_batch_gaps() {
        // δ = 5 µs < the 10 µs intra-batch gap: every packet starts a
        // "batch", so the algorithm reports the (tiny) inter-packet gaps —
        // the paper's "too many low estimates" failure mode.
        let mut arrivals = Vec::new();
        for batch in 0..3u64 {
            for i in 0..3u64 {
                arrivals.push(batch * MS + i * 10 * US);
            }
        }
        let samples = run(5 * US, &arrivals);
        // 8 transitions, all treated as new batches.
        assert_eq!(samples.len(), 8);
        assert!(samples.iter().filter(|&&s| s == 10 * US).count() >= 6);
    }

    #[test]
    fn too_high_timeout_merges_batches() {
        // δ = 3 ms > the 1 ms inter-batch gap: batches merge, few samples,
        // each spanning several true RTTs — the "too few large estimates"
        // failure mode.
        let mut arrivals = Vec::new();
        for batch in 0..10u64 {
            for i in 0..3u64 {
                arrivals.push(batch * MS + i * 10 * US);
            }
        }
        // Insert one long application pause (5 ms) halfway through.
        for a in arrivals.iter_mut().skip(15) {
            *a += 5 * MS;
        }
        let samples = run(3 * MS, &arrivals);
        assert_eq!(samples.len(), 1);
        assert!(samples[0] >= 5 * MS, "merged estimate must span the pause");
    }

    #[test]
    fn first_packet_yields_nothing() {
        let alg = FixedTimeout::new(100 * US);
        let mut state = FlowTiming::first_packet(0);
        // Even a packet long after the first produces a *sample* only via
        // the batch edge; with state initialized at t=0 the sample equals
        // the full gap.
        assert_eq!(alg.on_packet(&mut state, 2 * MS), Some(2 * MS));
    }

    #[test]
    fn gap_exactly_delta_does_not_split() {
        // Strict inequality per the paper: `now - last > δ`.
        let alg = FixedTimeout::new(100 * US);
        let mut state = FlowTiming::first_packet(0);
        assert_eq!(alg.on_packet(&mut state, 100 * US), None);
        assert_eq!(alg.on_packet(&mut state, 200 * US + 1), Some(200 * US + 1));
    }

    #[test]
    fn state_tracks_last_packet_not_last_batch() {
        // Batches longer than δ in total must not self-split as long as
        // consecutive packets stay within δ.
        let alg = FixedTimeout::new(100 * US);
        let mut state = FlowTiming::first_packet(0);
        for i in 1..50u64 {
            assert_eq!(alg.on_packet(&mut state, i * 90 * US), None);
        }
        // One long pause, then the next batch: sample = full elapsed span.
        let resume = 50 * 90 * US + MS;
        assert_eq!(alg.on_packet(&mut state, resume), Some(resume));
    }

    #[test]
    #[should_panic(expected = "timeout must be positive")]
    fn zero_timeout_rejected() {
        let _ = FixedTimeout::new(0);
    }
}
