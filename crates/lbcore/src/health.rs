//! Per-backend health tracking: detecting dead or stalled backends from
//! the *absence* of in-band samples.
//!
//! The failure mode this guards against is the blind spot of purely
//! latency-driven control: a crashed backend produces **no** `T_LB`
//! samples, so the estimator goes silent instead of reporting a bad
//! latency, and the Maglev table keeps forwarding to it forever. The
//! tracker closes the loop on sample *counts* rather than sample values:
//! a backend that is being offered traffic (forwarded packets keep
//! increasing) while producing zero new samples is presumed unhealthy.
//!
//! State machine per backend:
//!
//! ```text
//!            S silent epochs            +E more silent epochs
//! Healthy ────────────────▶ Suspect ────────────────▶ Ejected
//!    ▲  ▲   (or abort burst)    │  (or abort burst)      │
//!    │  └───── samples ─────────┘                        │ probation
//!    │                                                   ▼ timeout
//!    └───────────── samples (readmission) ────────── Probation
//!                                                        │ still silent
//!                                                        └──▶ Ejected
//! ```
//!
//! An *epoch* is a fixed control-plane period (default 100 ms). "Silent"
//! means zero new *credible* samples in an epoch **while traffic was
//! offered** — an idle backend that simply was not sent anything is never
//! ejected, and samples above [`HealthConfig::sample_ceiling`] do not
//! count (they are retransmission-backoff phantoms, not responses).
//! RTO-abort signals (connection setups that never progressed, reported
//! by the data plane) accelerate detection: a burst of aborts ejects a
//! backend without waiting out the full silence window. After
//! `probation_after`, an ejected backend re-enters [`HealthState::Probation`]
//! and is offered a floor-level trickle again; one epoch with samples
//! readmits it, another silent epoch re-ejects it.
//!
//! The tracker is deliberately decoupled from the estimator and the data
//! plane: [`HealthTracker::on_epoch`] consumes plain cumulative counters,
//! which keeps it a pure, property-testable state machine.

use crate::Nanos;

/// Liveness classification of one backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Producing samples (or not offered any traffic).
    Healthy,
    /// Offered traffic but silent for `suspect_after` consecutive epochs.
    Suspect,
    /// Presumed dead: receives no new connections, pinned flows migrated.
    Ejected,
    /// Past the probation timeout: offered a floor-level trickle to test
    /// whether it recovered.
    Probation,
}

impl HealthState {
    /// Stable wire name (used by the decision journal).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Ejected => "ejected",
            HealthState::Probation => "probation",
        }
    }
}

/// What fired a health state transition (used by the decision journal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTrigger {
    /// Offered-but-silent epochs crossed a threshold.
    Silence,
    /// An RTO-abort burst advanced the state machine early.
    AbortBurst,
    /// The probation probe trickle went unanswered.
    ProbeSilent,
    /// The ejection sit-out elapsed; backend enters probation.
    ProbationTimeout,
    /// Credible samples arrived; the silence run is over.
    SamplesReturned,
}

impl HealthTrigger {
    /// Stable wire name (used by the decision journal).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthTrigger::Silence => "silence",
            HealthTrigger::AbortBurst => "abort_burst",
            HealthTrigger::ProbeSilent => "probe_silent",
            HealthTrigger::ProbationTimeout => "probation_timeout",
            HealthTrigger::SamplesReturned => "samples_returned",
        }
    }
}

/// One recorded state transition: `(backend, from, to, trigger)`.
pub type HealthTransition = (usize, HealthState, HealthState, HealthTrigger);

/// Tunables for the health state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Length of one detection epoch.
    pub epoch: Nanos,
    /// Consecutive silent epochs before Healthy → Suspect.
    pub suspect_after: u32,
    /// Additional silent epochs before Suspect → Ejected.
    pub eject_after: u32,
    /// RTO-abort signals within the current silence run that immediately
    /// advance the state machine (Healthy → Suspect → Ejected).
    pub abort_threshold: u32,
    /// How long an ejected backend sits out before probation.
    pub probation_after: Nanos,
    /// Plausibility ceiling on `T_LB` samples counted as liveness
    /// evidence. A dead backend is not perfectly silent: its pinned
    /// clients retransmit on RTO backoff, and each retransmission burst
    /// looks like a new batch to the in-band estimator — producing
    /// phantom "samples" whose value is the backoff gap (tens to
    /// hundreds of milliseconds, far above any real response latency).
    /// The data plane must not count samples above this ceiling when it
    /// reports per-epoch sample counts to [`HealthTracker::on_epoch`],
    /// or the phantoms keep resetting the silence run forever.
    pub sample_ceiling: Nanos,
}

impl Default for HealthConfig {
    /// Detection window of 3 epochs ≈ 300 ms, probation after 1 s, and a
    /// 50 ms sample-plausibility ceiling (the largest ensemble timeout is
    /// 4 ms; a legitimate `T_LB` is orders of magnitude below 50 ms).
    fn default() -> HealthConfig {
        HealthConfig {
            epoch: 100_000_000,
            suspect_after: 2,
            eject_after: 1,
            abort_threshold: 3,
            probation_after: 1_000_000_000,
            sample_ceiling: 50_000_000,
        }
    }
}

/// Per-backend bookkeeping.
#[derive(Debug, Clone, Copy)]
struct BackendHealth {
    state: HealthState,
    /// Consecutive offered-but-sample-less epochs.
    silent_epochs: u32,
    /// RTO-abort signals since the last epoch with samples.
    aborts: u32,
    /// When the backend entered `Ejected`.
    ejected_at: Nanos,
    /// Cumulative sample count at the last epoch boundary.
    last_samples: u64,
    /// Cumulative forwarded-packet count at the last epoch boundary.
    last_forwarded: u64,
}

impl BackendHealth {
    fn new() -> BackendHealth {
        BackendHealth {
            state: HealthState::Healthy,
            silent_epochs: 0,
            aborts: 0,
            ejected_at: 0,
            last_samples: 0,
            last_forwarded: 0,
        }
    }
}

/// The health state machine over all backends of one LB.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    cfg: HealthConfig,
    backends: Vec<BackendHealth>,
    ejections: u64,
    readmissions: u64,
    /// Transitions fired by the most recent [`HealthTracker::on_epoch`].
    transitions: Vec<HealthTransition>,
}

impl HealthTracker {
    /// A tracker over `n` backends, all initially healthy.
    pub fn new(n: usize, cfg: HealthConfig) -> HealthTracker {
        assert!(n > 0, "at least one backend");
        assert!(cfg.epoch > 0, "epoch must be positive");
        assert!(cfg.suspect_after > 0, "suspect_after must be positive");
        assert!(cfg.eject_after > 0, "eject_after must be positive");
        HealthTracker {
            cfg,
            backends: vec![BackendHealth::new(); n],
            ejections: 0,
            readmissions: 0,
            transitions: Vec::new(),
        }
    }

    /// The configured tunables.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Number of tracked backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True if no backends are tracked (never constructible).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Current state of backend `b`.
    pub fn state(&self, b: usize) -> HealthState {
        self.backends[b].state
    }

    /// Records an RTO-abort signal against backend `b` (a connection
    /// setup that never progressed past the handshake). Cleared by the
    /// next epoch in which the backend produces samples.
    pub fn record_abort(&mut self, b: usize) {
        self.backends[b].aborts = self.backends[b].aborts.saturating_add(1);
    }

    /// Advances every backend by one epoch. `samples` and `forwarded` are
    /// *cumulative* per-backend counts (total samples recorded by the
    /// estimator; total packets forwarded by the data plane) — the tracker
    /// keeps the previous marks and works on the deltas. Returns `true`
    /// if any backend changed state.
    pub fn on_epoch(&mut self, now: Nanos, samples: &[u64], forwarded: &[u64]) -> bool {
        assert_eq!(samples.len(), self.backends.len(), "samples length");
        assert_eq!(forwarded.len(), self.backends.len(), "forwarded length");
        let cfg = self.cfg;
        let mut changed = false;
        let mut ejections = 0u64;
        let mut readmissions = 0u64;
        // Reuse the transition buffer's capacity across epochs.
        let mut transitions = core::mem::take(&mut self.transitions);
        transitions.clear();
        for (b, h) in self.backends.iter_mut().enumerate() {
            let new_samples = samples[b].saturating_sub(h.last_samples);
            let offered = forwarded[b] > h.last_forwarded;
            h.last_samples = samples[b];
            h.last_forwarded = forwarded[b];
            let before = h.state;
            let mut trigger = HealthTrigger::Silence;
            if new_samples > 0 {
                // Alive: clear the silence run and readmit if probing.
                h.silent_epochs = 0;
                h.aborts = 0;
                trigger = HealthTrigger::SamplesReturned;
                match h.state {
                    HealthState::Suspect => h.state = HealthState::Healthy,
                    HealthState::Probation => {
                        h.state = HealthState::Healthy;
                        readmissions += 1;
                    }
                    _ => {}
                }
            } else if offered {
                // Offered traffic but silent. Idle backends (not offered)
                // are left alone: absence of samples is only evidence of
                // death when there was traffic to answer.
                h.silent_epochs = h.silent_epochs.saturating_add(1);
                let abort_burst = h.aborts >= cfg.abort_threshold;
                if abort_burst {
                    trigger = HealthTrigger::AbortBurst;
                }
                match h.state {
                    HealthState::Healthy if h.silent_epochs >= cfg.suspect_after || abort_burst => {
                        h.state = HealthState::Suspect;
                    }
                    HealthState::Suspect
                        if h.silent_epochs >= cfg.suspect_after + cfg.eject_after
                            || abort_burst =>
                    {
                        h.state = HealthState::Ejected;
                        h.ejected_at = now;
                        h.silent_epochs = 0;
                        h.aborts = 0;
                        ejections += 1;
                    }
                    HealthState::Probation => {
                        // The probe trickle went unanswered: re-eject.
                        h.state = HealthState::Ejected;
                        h.ejected_at = now;
                        h.silent_epochs = 0;
                        h.aborts = 0;
                        ejections += 1;
                        trigger = HealthTrigger::ProbeSilent;
                    }
                    _ => {}
                }
            }
            if h.state == HealthState::Ejected
                && now.saturating_sub(h.ejected_at) >= cfg.probation_after
            {
                h.state = HealthState::Probation;
                trigger = HealthTrigger::ProbationTimeout;
            }
            if h.state != before {
                changed = true;
                transitions.push((b, before, h.state, trigger));
            }
        }
        self.transitions = transitions;
        self.ejections += ejections;
        self.readmissions += readmissions;
        changed
    }

    /// State transitions fired by the most recent
    /// [`HealthTracker::on_epoch`] call (cleared at every epoch).
    pub fn last_transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Mask of backends that must receive **no** traffic: true only for
    /// [`HealthState::Ejected`] (probation backends are eligible for the
    /// floor trickle).
    pub fn ejected_mask(&self) -> Vec<bool> {
        self.backends
            .iter()
            .map(|h| h.state == HealthState::Ejected)
            .collect()
    }

    /// Total ejections so far (including re-ejections from probation).
    pub fn ejections(&self) -> u64 {
        self.ejections
    }

    /// Total probation → healthy readmissions so far.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    /// Drives `t` through `epochs` boundaries with the given per-epoch
    /// deltas for backend 0 (other backends idle).
    fn drive(t: &mut HealthTracker, start_epoch: u64, deltas: &[(u64, u64)]) -> Nanos {
        let epoch = t.config().epoch;
        let n = t.len();
        let mut samples = vec![0u64; n];
        let mut forwarded = vec![0u64; n];
        let mut now = start_epoch * epoch;
        // Recover current cumulative marks so repeated drives compose.
        samples[0] = t.backends[0].last_samples;
        forwarded[0] = t.backends[0].last_forwarded;
        for &(ds, df) in deltas {
            now += epoch;
            samples[0] += ds;
            forwarded[0] += df;
            t.on_epoch(now, &samples, &forwarded);
        }
        now / epoch
    }

    #[test]
    fn healthy_backend_stays_healthy() {
        let mut t = HealthTracker::new(2, cfg());
        drive(&mut t, 0, &[(10, 100); 20]);
        assert_eq!(t.state(0), HealthState::Healthy);
        assert_eq!(t.ejections(), 0);
    }

    #[test]
    fn idle_backend_is_never_ejected() {
        // Zero samples *and* zero forwarded: no evidence of death.
        let mut t = HealthTracker::new(2, cfg());
        drive(&mut t, 0, &[(0, 0); 50]);
        assert_eq!(t.state(0), HealthState::Healthy);
    }

    #[test]
    fn silence_under_load_walks_to_ejected() {
        let mut t = HealthTracker::new(2, cfg());
        drive(&mut t, 0, &[(5, 50)]);
        drive(&mut t, 1, &[(0, 50)]);
        assert_eq!(t.state(0), HealthState::Healthy); // 1 silent epoch
        drive(&mut t, 2, &[(0, 50)]);
        assert_eq!(t.state(0), HealthState::Suspect); // 2 silent epochs
        drive(&mut t, 3, &[(0, 50)]);
        assert_eq!(t.state(0), HealthState::Ejected); // 3 silent epochs
        assert_eq!(t.ejections(), 1);
        assert_eq!(t.ejected_mask(), vec![true, false]);
    }

    #[test]
    fn samples_reset_the_silence_run() {
        let mut t = HealthTracker::new(2, cfg());
        drive(&mut t, 0, &[(0, 50), (0, 50)]);
        assert_eq!(t.state(0), HealthState::Suspect);
        drive(&mut t, 2, &[(3, 50)]);
        assert_eq!(t.state(0), HealthState::Healthy);
        // The run starts over: two more silent epochs only reach Suspect.
        drive(&mut t, 3, &[(0, 50), (0, 50)]);
        assert_eq!(t.state(0), HealthState::Suspect);
    }

    #[test]
    fn abort_burst_accelerates_ejection() {
        let mut t = HealthTracker::new(2, cfg());
        for _ in 0..3 {
            t.record_abort(0);
        }
        drive(&mut t, 0, &[(0, 50)]);
        assert_eq!(t.state(0), HealthState::Suspect); // 1 silent epoch + burst
        drive(&mut t, 1, &[(0, 50)]);
        assert_eq!(t.state(0), HealthState::Ejected); // 2 epochs, not 3
    }

    #[test]
    fn probation_and_readmission() {
        let mut t = HealthTracker::new(2, cfg());
        drive(&mut t, 0, &[(0, 50), (0, 50), (0, 50)]);
        assert_eq!(t.state(0), HealthState::Ejected);
        // probation_after = 1 s = 10 epochs after the ejection epoch.
        drive(&mut t, 3, &[(0, 0); 9]);
        assert_eq!(t.state(0), HealthState::Ejected);
        drive(&mut t, 12, &[(0, 0)]);
        assert_eq!(t.state(0), HealthState::Probation);
        assert_eq!(t.ejected_mask(), vec![false, false]);
        // Probe answered: readmitted.
        drive(&mut t, 13, &[(2, 5)]);
        assert_eq!(t.state(0), HealthState::Healthy);
        assert_eq!(t.readmissions(), 1);
    }

    #[test]
    fn transitions_are_recorded_with_triggers() {
        let mut t = HealthTracker::new(2, cfg());
        drive(&mut t, 0, &[(0, 50)]);
        assert_eq!(t.last_transitions(), &[]);
        drive(&mut t, 1, &[(0, 50)]);
        assert_eq!(
            t.last_transitions(),
            &[(
                0,
                HealthState::Healthy,
                HealthState::Suspect,
                HealthTrigger::Silence
            )]
        );
        drive(&mut t, 2, &[(0, 50)]);
        assert_eq!(
            t.last_transitions(),
            &[(
                0,
                HealthState::Suspect,
                HealthState::Ejected,
                HealthTrigger::Silence
            )]
        );
        // Probation timeout, then a probe answered: readmission trigger.
        drive(&mut t, 3, &[(0, 0); 10]);
        assert_eq!(
            t.last_transitions(),
            &[(
                0,
                HealthState::Ejected,
                HealthState::Probation,
                HealthTrigger::ProbationTimeout
            )]
        );
        drive(&mut t, 13, &[(2, 5)]);
        assert_eq!(
            t.last_transitions(),
            &[(
                0,
                HealthState::Probation,
                HealthState::Healthy,
                HealthTrigger::SamplesReturned
            )]
        );
        // A quiet epoch clears the buffer.
        drive(&mut t, 14, &[(2, 5)]);
        assert_eq!(t.last_transitions(), &[]);
    }

    #[test]
    fn abort_burst_transition_carries_trigger() {
        let mut t = HealthTracker::new(2, cfg());
        for _ in 0..3 {
            t.record_abort(0);
        }
        drive(&mut t, 0, &[(0, 50)]);
        assert_eq!(
            t.last_transitions(),
            &[(
                0,
                HealthState::Healthy,
                HealthState::Suspect,
                HealthTrigger::AbortBurst
            )]
        );
    }

    #[test]
    fn silent_probation_re_ejects() {
        let mut t = HealthTracker::new(2, cfg());
        drive(&mut t, 0, &[(0, 50), (0, 50), (0, 50)]);
        drive(&mut t, 3, &[(0, 0); 10]);
        assert_eq!(t.state(0), HealthState::Probation);
        drive(&mut t, 13, &[(0, 5)]);
        assert_eq!(t.state(0), HealthState::Ejected);
        assert_eq!(t.ejections(), 2);
    }
}
