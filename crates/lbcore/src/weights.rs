//! Normalized backend traffic shares.

/// A normalized weight vector over backends: entries are ≥ `floor`, sum to
/// 1, and represent each backend's share of *new* connections.
#[derive(Debug, Clone)]
pub struct Weights {
    w: Vec<f64>,
    floor: f64,
    /// Reusable buffer for [`Weights::apply_ejections`], so re-applying an
    /// ejection mask on the control path allocates nothing after the first
    /// call. Never part of the value: equality ignores it.
    scratch: Vec<f64>,
}

impl PartialEq for Weights {
    fn eq(&self, other: &Self) -> bool {
        self.w == other.w && self.floor == other.floor
    }
}

impl Weights {
    /// Equal shares over `n` backends with a per-backend floor (a backend's
    /// share never drops below the floor, so every backend keeps receiving
    /// a trickle of traffic — otherwise a recovered server could never be
    /// re-measured from in-band samples).
    pub fn equal(n: usize, floor: f64) -> Weights {
        assert!(n > 0, "at least one backend");
        assert!(
            (0.0..1.0).contains(&floor) && floor * n as f64 <= 1.0,
            "floor {floor} infeasible for {n} backends"
        );
        Weights {
            w: vec![1.0 / n as f64; n],
            floor,
            scratch: Vec::new(),
        }
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True if there are no backends (never constructible).
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// The shares.
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// A single backend's share.
    pub fn get(&self, i: usize) -> f64 {
        self.w[i]
    }

    /// The configured floor.
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Moves `alpha` of *total* traffic away from backend `from`, spread
    /// equally over all other backends (the paper's control action). The
    /// donor is clamped at the floor; the actually moved amount is
    /// returned (may be less than `alpha` near the floor).
    pub fn shift_from(&mut self, from: usize, alpha: f64) -> f64 {
        assert!((0.0..1.0).contains(&alpha), "alpha out of range");
        let n = self.w.len();
        if n < 2 {
            return 0.0;
        }
        let movable = (self.w[from] - self.floor).max(0.0).min(alpha);
        if movable <= 0.0 {
            return 0.0;
        }
        self.w[from] -= movable;
        let each = movable / (n - 1) as f64;
        for (i, w) in self.w.iter_mut().enumerate() {
            if i != from {
                *w += each;
            }
        }
        self.renormalize();
        movable
    }

    /// Replaces the shares with the normalization of `new`, then enforces
    /// the floor by water-filling: backends that would fall below the floor
    /// are pinned to it and the remaining mass is split proportionally
    /// among the rest. An all-zero input degrades to equal shares rather
    /// than dividing by zero (the caller has no signal to apportion by).
    pub fn set(&mut self, new: &[f64]) {
        assert_eq!(new.len(), self.w.len(), "backend count mismatch");
        assert!(
            new.iter().all(|&x| x.is_finite() && x >= 0.0),
            "weights must be finite and >= 0"
        );
        Self::set_into(&mut self.w, self.floor, new);
    }

    fn set_into(w: &mut [f64], floor: f64, new: &[f64]) {
        let n = new.len();
        let total: f64 = new.iter().sum();
        let raw: Vec<f64> = if total > 0.0 {
            new.iter().map(|&x| x / total).collect()
        } else {
            vec![1.0 / n as f64; n]
        };
        let mut pinned = vec![false; n];
        loop {
            let pinned_count = pinned.iter().filter(|&&p| p).count();
            if pinned_count == n {
                // Everything pinned: distribute the leftover equally.
                let each = 1.0 / n as f64;
                w.iter_mut().for_each(|w| *w = each);
                return;
            }
            let mass = 1.0 - pinned_count as f64 * floor;
            let unpinned_sum: f64 = raw
                .iter()
                .zip(&pinned)
                .filter(|(_, &p)| !p)
                .map(|(x, _)| x)
                .sum();
            let mut newly_pinned = false;
            for i in 0..n {
                if pinned[i] {
                    w[i] = floor;
                    continue;
                }
                let candidate = if unpinned_sum > 0.0 {
                    raw[i] * mass / unpinned_sum
                } else {
                    mass / (n - pinned_count) as f64
                };
                if candidate < floor {
                    pinned[i] = true;
                    newly_pinned = true;
                } else {
                    w[i] = candidate;
                }
            }
            if !newly_pinned {
                return;
            }
        }
    }

    /// Ejection-aware renormalization: replaces the shares with the
    /// normalization of `new` over the surviving (non-ejected) backends,
    /// water-filling the floor among survivors. Ejected backends are
    /// pinned to exactly **zero** — unlike the floor, which exists to keep
    /// live backends measurable, an ejected backend must receive no new
    /// connections at all.
    ///
    /// Edge cases: a single survivor takes the whole share (1.0); when
    /// *every* backend is ejected the method returns `false` and leaves
    /// the shares untouched — the caller must stop admitting traffic
    /// (drop-with-counter) instead of dividing by zero.
    pub fn set_with_ejections(&mut self, new: &[f64], ejected: &[bool]) -> bool {
        assert_eq!(new.len(), self.w.len(), "backend count mismatch");
        assert_eq!(ejected.len(), self.w.len(), "mask length mismatch");
        assert!(
            new.iter().all(|&x| x.is_finite() && x >= 0.0),
            "weights must be finite and >= 0"
        );
        Self::eject_into(&mut self.w, self.floor, new, ejected)
    }

    /// Re-applies an ejection mask to the *current* shares in place —
    /// exactly `set_with_ejections(self.as_slice(), ejected)`, but without
    /// the caller cloning the shares first: the current shares are staged
    /// through a reusable internal scratch buffer, so the controller's
    /// mask-reapply-per-rebuild path stops allocating.
    pub fn apply_ejections(&mut self, ejected: &[bool]) -> bool {
        assert_eq!(ejected.len(), self.w.len(), "mask length mismatch");
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.w);
        // Detach the scratch so the borrow checker allows reading it while
        // writing `w`; hand it back (capacity intact) when done.
        let raw = core::mem::take(&mut self.scratch);
        let ok = Self::eject_into(&mut self.w, self.floor, &raw, ejected);
        self.scratch = raw;
        ok
    }

    fn eject_into(w: &mut [f64], floor: f64, new: &[f64], ejected: &[bool]) -> bool {
        let n = w.len();
        let m = n - ejected.iter().filter(|&&e| e).count();
        if m == 0 {
            return false;
        }
        if m == n {
            Self::set_into(w, floor, new);
            return true;
        }
        // Normalize over survivors; if they carry no mass, split equally.
        let total: f64 = new
            .iter()
            .zip(ejected)
            .filter(|(_, &e)| !e)
            .map(|(x, _)| x)
            .sum();
        let raw: Vec<f64> = new
            .iter()
            .zip(ejected)
            .map(|(&x, &e)| {
                if e {
                    0.0
                } else if total > 0.0 {
                    x / total
                } else {
                    1.0 / m as f64
                }
            })
            .collect();
        // Water-fill the floor among survivors only. Feasible because
        // floor * m <= floor * n <= 1 (checked at construction).
        let mut pinned = vec![false; n];
        loop {
            let pinned_count = pinned.iter().filter(|&&p| p).count();
            if pinned_count == m {
                let each = 1.0 / m as f64;
                for (wi, &e) in w.iter_mut().zip(ejected) {
                    *wi = if e { 0.0 } else { each };
                }
                return true;
            }
            let mass = 1.0 - pinned_count as f64 * floor;
            let unpinned_sum: f64 = (0..n)
                .filter(|&i| !ejected[i] && !pinned[i])
                .map(|i| raw[i])
                .sum();
            let mut newly_pinned = false;
            for i in 0..n {
                if ejected[i] {
                    w[i] = 0.0;
                    continue;
                }
                if pinned[i] {
                    w[i] = floor;
                    continue;
                }
                let candidate = if unpinned_sum > 0.0 {
                    raw[i] * mass / unpinned_sum
                } else {
                    mass / (m - pinned_count) as f64
                };
                if candidate < floor {
                    pinned[i] = true;
                    newly_pinned = true;
                } else {
                    w[i] = candidate;
                }
            }
            if !newly_pinned {
                return true;
            }
        }
    }

    /// Multiplies one share by `factor` (≥ 0) and renormalizes.
    pub fn scale(&mut self, i: usize, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and >= 0"
        );
        self.w[i] = (self.w[i] * factor).max(self.floor);
        self.renormalize();
    }

    fn renormalize(&mut self) {
        let total: f64 = self.w.iter().sum();
        debug_assert!(total > 0.0);
        for w in &mut self.w {
            *w /= total;
        }
    }

    /// Largest absolute difference from another weight vector.
    pub fn max_diff(&self, other: &Weights) -> f64 {
        self.w
            .iter()
            .zip(&other.w)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(w: &Weights) -> f64 {
        w.as_slice().iter().sum()
    }

    #[test]
    fn equal_construction() {
        let w = Weights::equal(4, 0.01);
        assert_eq!(w.len(), 4);
        for i in 0..4 {
            assert!((w.get(i) - 0.25).abs() < 1e-12);
        }
        assert!((sum(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_moves_alpha() {
        let mut w = Weights::equal(2, 0.01);
        let moved = w.shift_from(0, 0.10);
        assert!((moved - 0.10).abs() < 1e-12);
        assert!((w.get(0) - 0.40).abs() < 1e-9);
        assert!((w.get(1) - 0.60).abs() < 1e-9);
        assert!((sum(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_spreads_equally_over_others() {
        let mut w = Weights::equal(5, 0.0);
        w.shift_from(2, 0.20);
        assert!((w.get(2) - 0.0).abs() < 1e-12);
        for i in [0usize, 1, 3, 4] {
            assert!((w.get(i) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn floor_limits_shift() {
        let mut w = Weights::equal(2, 0.05);
        // Repeated shifts cannot push the donor below the floor.
        for _ in 0..20 {
            w.shift_from(0, 0.10);
        }
        assert!(w.get(0) >= 0.05 - 1e-12);
        assert!((sum(&w) - 1.0).abs() < 1e-9);
        // And the shift reports less than alpha once pinned.
        let moved = w.shift_from(0, 0.10);
        assert!(moved < 1e-9);
    }

    #[test]
    fn set_clamps_and_normalizes() {
        let mut w = Weights::equal(3, 0.02);
        w.set(&[10.0, 0.0, 10.0]);
        assert!(
            (w.get(1) - 0.02).abs() < 1e-12,
            "pinned to floor: {}",
            w.get(1)
        );
        assert!((sum(&w) - 1.0).abs() < 1e-9);
        assert!((w.get(0) - 0.49).abs() < 1e-9);
    }

    #[test]
    fn set_without_floor_is_pure_normalization() {
        let mut w = Weights::equal(2, 0.0);
        w.set(&[3.0, 1.0]);
        assert!((w.get(0) - 0.75).abs() < 1e-12);
        assert!((w.get(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn set_all_tiny_pins_everything_equally() {
        let mut w = Weights::equal(2, 0.3);
        w.set(&[1e-9, 1e-9]);
        assert!((w.get(0) - 0.5).abs() < 1e-9);
        assert!((w.get(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scale_changes_ratio() {
        let mut w = Weights::equal(2, 0.0);
        w.scale(0, 0.5); // 0.25 vs 0.5 -> normalized 1/3 vs 2/3
        assert!((w.get(0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((w.get(1) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn max_diff_symmetry() {
        let a = Weights::equal(2, 0.0);
        let mut b = Weights::equal(2, 0.0);
        b.shift_from(0, 0.2);
        assert!((a.max_diff(&b) - 0.2).abs() < 1e-9);
        assert!((b.max_diff(&a) - 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_floor_rejected() {
        let _ = Weights::equal(3, 0.5);
    }

    #[test]
    fn set_all_zero_degrades_to_equal_shares() {
        let mut w = Weights::equal(3, 0.02);
        w.set(&[0.7, 0.2, 0.1]);
        w.set(&[0.0, 0.0, 0.0]);
        for i in 0..3 {
            assert!((w.get(i) - 1.0 / 3.0).abs() < 1e-9, "w[{i}] = {}", w.get(i));
        }
    }

    #[test]
    fn ejection_zeroes_and_renormalizes_survivors() {
        let mut w = Weights::equal(4, 0.02);
        assert!(w.set_with_ejections(&[3.0, 1.0, 2.0, 2.0], &[false, true, false, true]));
        assert_eq!(w.get(1).to_bits(), 0.0f64.to_bits());
        assert_eq!(w.get(3).to_bits(), 0.0f64.to_bits());
        assert!((w.get(0) - 0.6).abs() < 1e-9);
        assert!((w.get(2) - 0.4).abs() < 1e-9);
        assert!((sum(&w) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_survivor_takes_the_whole_share() {
        let mut w = Weights::equal(3, 0.02);
        assert!(w.set_with_ejections(&[0.0, 5.0, 0.0], &[true, false, true]));
        assert!((w.get(1) - 1.0).abs() < 1e-12);
        assert_eq!(w.get(0).to_bits(), 0.0f64.to_bits());
        assert_eq!(w.get(2).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn all_ejected_refuses_and_preserves_shares() {
        let mut w = Weights::equal(2, 0.02);
        w.set(&[3.0, 1.0]);
        let before = w.clone();
        assert!(!w.set_with_ejections(&[3.0, 1.0], &[true, true]));
        assert!(w.max_diff(&before) < 1e-12);
    }

    #[test]
    fn survivors_with_zero_mass_split_equally() {
        let mut w = Weights::equal(3, 0.02);
        assert!(w.set_with_ejections(&[0.0, 0.0, 7.0], &[false, false, true]));
        assert!((w.get(0) - 0.5).abs() < 1e-9);
        assert!((w.get(1) - 0.5).abs() < 1e-9);
        assert_eq!(w.get(2).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn apply_ejections_is_bit_identical_to_clone_then_set() {
        let mut a = Weights::equal(4, 0.05);
        a.set(&[100.0, 0.001, 50.0, 1.0]);
        let mut b = a.clone();
        let mask = [false, true, false, true];
        let raw = a.as_slice().to_vec();
        assert!(a.set_with_ejections(&raw, &mask));
        assert!(b.apply_ejections(&mask));
        for i in 0..4 {
            assert_eq!(a.get(i).to_bits(), b.get(i).to_bits(), "share {i} diverged");
        }
        // All-ejected still refuses and leaves the shares untouched.
        let before = b.clone();
        assert!(!b.apply_ejections(&[true, true, true, true]));
        assert!(b.max_diff(&before) < 1e-12);
    }

    #[test]
    fn all_ejected_refusal_is_bitwise_and_recoverable() {
        // The refused call must not perturb even the last bit of the
        // shares (callers keep serving from the stale vector while in
        // no-backend drop mode), and the *next* valid call must work
        // normally — refusal leaves no sticky state behind.
        let mut w = Weights::equal(3, 0.02);
        w.set(&[0.7, 0.2, 0.1]);
        let before: Vec<u64> = w.as_slice().iter().map(|x| x.to_bits()).collect();
        assert!(!w.set_with_ejections(&[1.0, 1.0, 1.0], &[true, true, true]));
        let after: Vec<u64> = w.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(before, after, "refused call must preserve shares bitwise");
        // Readmission: the very next call with a survivor succeeds.
        assert!(w.set_with_ejections(&[0.0, 5.0, 5.0], &[true, false, false]));
        assert_eq!(w.get(0).to_bits(), 0.0f64.to_bits());
        assert!((w.get(1) - 0.5).abs() < 1e-9);
        assert!((w.get(2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn extreme_skew_pins_every_survivor_at_the_floor() {
        // floor * n == 1.0 is feasible but leaves zero slack: water-fill
        // must cascade until every backend is pinned at exactly the
        // floor, whatever the skew of the input.
        let mut w = Weights::equal(4, 0.25);
        w.set(&[1000.0, 1.0, 1.0, 1.0]);
        for i in 0..4 {
            assert!((w.get(i) - 0.25).abs() < 1e-12, "w[{i}] = {}", w.get(i));
        }
        assert!((sum(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ejection_with_near_floor_skew_cascades_pins() {
        // Ejecting one backend tightens the survivor budget: with
        // floor 0.2 over 3 survivors only 0.4 of mass is free, so an
        // extreme skew pins both small survivors in a second pass.
        let mut w = Weights::equal(4, 0.2);
        assert!(w.set_with_ejections(&[1e6, 1.0, 1.0, 3.0], &[false, false, false, true]));
        assert_eq!(w.get(3).to_bits(), 0.0f64.to_bits());
        assert!((w.get(1) - 0.2).abs() < 1e-12, "pinned: {}", w.get(1));
        assert!((w.get(2) - 0.2).abs() < 1e-12, "pinned: {}", w.get(2));
        assert!((w.get(0) - 0.6).abs() < 1e-9, "remainder: {}", w.get(0));
        assert!((sum(&w) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_survivor_with_zero_mass_takes_one() {
        // The lone survivor carried no estimator mass at all; it still
        // must take the whole share (the equal-split fallback over m=1).
        let mut w = Weights::equal(3, 0.02);
        assert!(w.set_with_ejections(&[0.0, 0.0, 0.0], &[true, true, false]));
        assert_eq!(w.get(0).to_bits(), 0.0f64.to_bits());
        assert_eq!(w.get(1).to_bits(), 0.0f64.to_bits());
        assert_eq!(w.get(2).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn ejection_respects_floor_among_survivors() {
        let mut w = Weights::equal(4, 0.05);
        assert!(w.set_with_ejections(&[100.0, 0.001, 50.0, 1.0], &[false, false, true, false]));
        assert_eq!(w.get(2).to_bits(), 0.0f64.to_bits());
        assert!(w.get(1) >= 0.05 - 1e-12, "floored: {}", w.get(1));
        assert!(w.get(3) >= 0.05 - 1e-12, "floored: {}", w.get(3));
        assert!((sum(&w) - 1.0).abs() < 1e-9);
    }
}
