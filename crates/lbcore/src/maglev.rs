//! Maglev consistent hashing (Eisenbud et al., NSDI '16), with a weighted
//! extension.
//!
//! The paper's testbed LB (Cilium XDP) uses Maglev to map connections to
//! backends; the feedback controller expresses its traffic shift by
//! changing backend *weights* and rebuilding the lookup table. This module
//! implements:
//!
//! * the permutation-based table population of the original paper
//!   (`offset`/`skip` from two independent hashes, each backend claiming
//!   its next preferred empty slot in turn), and
//! * a weighted variant in which backend *i* receives turns proportional
//!   to its weight via a credit accumulator, so the final slot shares track
//!   the weight vector to within one part in the table size.

use netpkt::flow::splitmix64;

/// A Maglev lookup table mapping hashes to backend indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaglevTable {
    table: Vec<u32>,
    backends: usize,
}

/// Returns true if `n` is prime (trial division; table sizes are small).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The default table size: a prime large enough that a 10% weight change
/// moves ≈400 slots (fine-grained), small enough to rebuild in tens of
/// microseconds. The original paper uses 65537 for production tables.
pub const DEFAULT_TABLE_SIZE: usize = 4093;

impl MaglevTable {
    /// Builds a table of `size` slots (must be prime and ≥ backends) over
    /// `weights.len()` backends with the given relative weights.
    ///
    /// Backends are identified by their index; hashing salts each index so
    /// permutations are independent. Weights must be non-negative and sum
    /// to a positive value; a zero-weight backend receives no *new* slots.
    ///
    /// # Panics
    /// Panics on an empty weight vector, non-prime size, or all-zero
    /// weights.
    pub fn build(weights: &[f64], size: usize) -> MaglevTable {
        let n = weights.len();
        assert!(n > 0, "at least one backend required");
        assert!(is_prime(size as u64), "table size must be prime");
        assert!(size >= n, "table smaller than backend count");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be >= 0"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one positive weight required");

        // Per-backend permutation parameters (offset, skip), NSDI '16 §3.4.
        let m = size as u64;
        let mut offset = Vec::with_capacity(n);
        let mut skip = Vec::with_capacity(n);
        let mut next = vec![0u64; n]; // next index into each permutation
        for b in 0..n {
            let h1 = splitmix64(0x6d61_676c_6576_0001 ^ (b as u64).wrapping_mul(0x9e37_79b9));
            let h2 = splitmix64(0x6d61_676c_6576_0002 ^ (b as u64).wrapping_mul(0x7f4a_7c15));
            offset.push(h1 % m);
            skip.push(h2 % (m - 1) + 1);
        }

        let mut table = vec![u32::MAX; size];
        let mut filled = 0usize;
        // Weighted turn-taking: each round, backend b accrues
        // `weight_b / mean_weight` credits and claims one preferred slot
        // per whole credit.
        let mean = total / n as f64;
        let mut credit = vec![0.0f64; n];
        while filled < size {
            let mut progressed = false;
            for b in 0..n {
                credit[b] += weights[b] / mean;
                while credit[b] >= 1.0 && filled < size {
                    credit[b] -= 1.0;
                    // Claim the next empty slot in b's permutation.
                    loop {
                        let c = (offset[b] + next[b] * skip[b]) % m;
                        next[b] += 1;
                        let slot = c as usize;
                        if table[slot] == u32::MAX {
                            table[slot] = b as u32;
                            filled += 1;
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            // All-zero-credit rounds cannot happen (total > 0), but guard
            // against pathological float underflow.
            if !progressed && credit.iter().all(|&c| c < 1.0) {
                continue;
            }
        }
        MaglevTable { table, backends: n }
    }

    /// Builds an equal-weight table (classic Maglev).
    pub fn build_equal(backends: usize, size: usize) -> MaglevTable {
        MaglevTable::build(&vec![1.0; backends], size)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table has no slots (never happens for built tables).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of backends the table was built over.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Looks up the backend for a flow hash.
    #[inline]
    pub fn lookup(&self, hash: u64) -> usize {
        self.table[(hash % self.table.len() as u64) as usize] as usize
    }

    /// The fraction of slots owned by each backend.
    pub fn shares(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.backends];
        for &b in &self.table {
            counts[b as usize] += 1;
        }
        counts
            .iter()
            .map(|&c| c as f64 / self.table.len() as f64)
            .collect()
    }

    /// Number of slots that differ between two same-size tables — the
    /// *disruption* a table swap causes to connections without flow-table
    /// entries.
    pub fn slots_changed(&self, other: &MaglevTable) -> usize {
        assert_eq!(self.len(), other.len(), "tables must be the same size");
        self.table
            .iter()
            .zip(&other.table)
            .filter(|(a, b)| a != b)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_balance() {
        for n in [2usize, 3, 5, 10] {
            let t = MaglevTable::build_equal(n, DEFAULT_TABLE_SIZE);
            let shares = t.shares();
            for (b, s) in shares.iter().enumerate() {
                let expect = 1.0 / n as f64;
                assert!(
                    (s - expect).abs() < 0.01,
                    "backend {b} of {n}: share {s} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn weighted_shares_track_weights() {
        let weights = [0.5, 0.3, 0.2];
        let t = MaglevTable::build(&weights, DEFAULT_TABLE_SIZE);
        let shares = t.shares();
        for (w, s) in weights.iter().zip(&shares) {
            assert!((w - s).abs() < 0.02, "weight {w} vs share {s}");
        }
    }

    #[test]
    fn extreme_skew_respected() {
        let t = MaglevTable::build(&[0.9, 0.1], DEFAULT_TABLE_SIZE);
        let shares = t.shares();
        assert!((shares[0] - 0.9).abs() < 0.02);
        assert!((shares[1] - 0.1).abs() < 0.02);
    }

    #[test]
    fn zero_weight_backend_gets_nothing() {
        let t = MaglevTable::build(&[1.0, 0.0, 1.0], DEFAULT_TABLE_SIZE);
        let shares = t.shares();
        assert_eq!(shares[1], 0.0);
        assert!((shares[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn lookup_is_deterministic_and_in_range() {
        let t = MaglevTable::build_equal(4, 251);
        for h in 0..10_000u64 {
            let b = t.lookup(splitmix64(h));
            assert!(b < 4);
            assert_eq!(b, t.lookup(splitmix64(h)));
        }
    }

    #[test]
    fn small_weight_change_is_low_disruption() {
        // Moving 10% of weight should remap roughly 10% of slots, not
        // reshuffle the table — the consistent-hashing property that keeps
        // un-tracked connections mostly unbroken.
        let a = MaglevTable::build(&[1.0, 1.0], DEFAULT_TABLE_SIZE);
        let b = MaglevTable::build(&[0.9, 1.1], DEFAULT_TABLE_SIZE);
        let changed = a.slots_changed(&b) as f64 / a.len() as f64;
        assert!(changed < 0.15, "disruption {changed} too high");
        assert!(changed > 0.0, "tables identical — weights ignored");
    }

    #[test]
    fn rebuild_identical_inputs_identical_tables() {
        let a = MaglevTable::build(&[0.7, 0.3], 1021);
        let b = MaglevTable::build(&[0.7, 0.3], 1021);
        assert_eq!(a, b);
    }

    #[test]
    fn backend_removal_spreads_to_survivors() {
        let a = MaglevTable::build_equal(3, DEFAULT_TABLE_SIZE);
        let b = MaglevTable::build(&[1.0, 1.0, 0.0], DEFAULT_TABLE_SIZE);
        // Every slot that pointed to backend 2 moved; slots of 0 and 1
        // mostly did not.
        let moved = a.slots_changed(&b) as f64 / a.len() as f64;
        assert!(moved > 0.25 && moved < 0.45, "moved {moved}");
        let shares = b.shares();
        assert!((shares[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn prime_checker() {
        assert!(is_prime(2));
        assert!(is_prime(251));
        assert!(is_prime(4093));
        assert!(is_prime(65537));
        assert!(!is_prime(1));
        assert!(!is_prime(4094));
        assert!(!is_prime(65536));
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn non_prime_size_rejected() {
        let _ = MaglevTable::build_equal(2, 4096);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_rejected() {
        let _ = MaglevTable::build(&[0.0, 0.0], 251);
    }
}
