//! Per-connection state at the LB: backend affinity plus the measurement
//! state of Algorithms 1/2.
//!
//! Connection-to-backend affinity is a hard LB requirement (§2.5): once a
//! connection is assigned, weight changes must not move it, or the TCP
//! connection breaks. The flow table pins assignments; the Maglev table
//! only decides *new* flows. Entries expire after an idle timeout, swept
//! periodically, so the table is bounded by the number of live-ish flows.

use std::collections::BTreeMap;
use std::ops::Bound;

use netpkt::FlowKey;

use crate::ensemble::EnsembleFlowState;
use crate::Nanos;

/// Per-flow entry.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    /// The pinned backend index.
    pub backend: usize,
    /// Measurement state for the ensemble estimator.
    pub timing: EnsembleFlowState,
    /// When the flow was first seen.
    pub created: Nanos,
    /// Last packet arrival (drives idle expiry).
    pub last_seen: Nanos,
    /// Packets observed on this flow.
    pub packets: u64,
}

/// Flow-table counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlowTableStats {
    /// Entries created.
    pub inserted: u64,
    /// Entries explicitly removed (SYN-reset of a stale tuple, etc.).
    pub closed: u64,
    /// Entries removed by the idle sweep.
    pub expired: u64,
    /// Entries evicted because the table hit its capacity (SYN floods —
    /// §2.4's volumetric-attack concern — must not grow LB memory
    /// without bound).
    pub evicted: u64,
    /// Entries migrated to a different backend by health ejection.
    pub repinned: u64,
}

/// The LB's connection table.
///
/// Entries live in a `BTreeMap` so every traversal (capacity probes,
/// sweeps, per-backend counts) runs in key order: the table's observable
/// behaviour is a pure function of its contents, independent of hasher
/// seeds or insertion history (simlint rule D3).
#[derive(Debug)]
pub struct FlowTable {
    entries: BTreeMap<FlowKey, FlowEntry>,
    idle_timeout: Nanos,
    max_entries: usize,
    /// Where the next capacity probe resumes (exclusive). Rotating the
    /// probe window across the key space approximates LRU with a fixed
    /// per-insert cost instead of always re-probing the smallest keys.
    probe_cursor: Option<FlowKey>,
    /// Counters.
    pub stats: FlowTableStats,
}

impl FlowTable {
    /// Creates a table whose entries expire after `idle_timeout` without
    /// traffic, with a default capacity of 2²⁰ entries.
    pub fn new(idle_timeout: Nanos) -> FlowTable {
        Self::with_capacity(idle_timeout, 1 << 20)
    }

    /// Creates a table with an explicit capacity. At capacity, inserting
    /// evicts the least-recently-seen entry among a bounded probe of
    /// existing entries (approximate LRU, the fixed-cost strategy
    /// production LB conntracks use).
    pub fn with_capacity(idle_timeout: Nanos, max_entries: usize) -> FlowTable {
        assert!(idle_timeout > 0, "idle timeout must be positive");
        assert!(max_entries > 0, "capacity must be positive");
        FlowTable {
            entries: BTreeMap::new(),
            idle_timeout,
            max_entries,
            probe_cursor: None,
            stats: FlowTableStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a flow.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut FlowEntry> {
        self.entries.get_mut(key)
    }

    /// Inserts a new flow pinned to `backend`, evicting if at capacity.
    pub fn insert(
        &mut self,
        key: FlowKey,
        backend: usize,
        timing: EnsembleFlowState,
        now: Nanos,
    ) -> &mut FlowEntry {
        if self.entries.len() >= self.max_entries && !self.entries.contains_key(&key) {
            self.evict_one();
        }
        self.stats.inserted += 1;
        self.entries.entry(key).or_insert(FlowEntry {
            backend,
            timing,
            created: now,
            last_seen: now,
            packets: 0,
        })
    }

    /// Evicts the least-recently-seen entry among a bounded, key-ordered
    /// probe window (approximate LRU, the fixed-cost strategy production
    /// LB conntracks use). The window starts after the previous probe's
    /// last key and wraps, so repeated evictions sweep the whole table
    /// deterministically.
    fn evict_one(&mut self) {
        const PROBE: usize = 16;
        let mut probed: Vec<(FlowKey, Nanos)> = Vec::with_capacity(PROBE);
        let start = match self.probe_cursor {
            Some(c) => (Bound::Excluded(c), Bound::Unbounded),
            None => (Bound::Unbounded, Bound::Unbounded),
        };
        for (k, e) in self.entries.range(start).take(PROBE) {
            probed.push((*k, e.last_seen));
        }
        if probed.len() < PROBE {
            // Wrapped past the largest key: continue from the smallest.
            let have = probed.len();
            for (k, e) in self.entries.iter().take(PROBE - have) {
                if probed.iter().any(|(p, _)| p == k) {
                    break;
                }
                probed.push((*k, e.last_seen));
            }
        }
        // Ties on `last_seen` break on the key, keeping the choice a
        // pure function of table contents.
        let victim = probed
            .iter()
            .min_by_key(|(k, seen)| (*seen, *k))
            .map(|(k, _)| *k);
        if let Some(v) = victim {
            self.probe_cursor = probed.last().map(|(k, _)| *k);
            self.entries.remove(&v);
            self.stats.evicted += 1;
        }
    }

    /// Removes a flow (observed FIN from the client, or RST).
    pub fn remove(&mut self, key: &FlowKey) -> Option<FlowEntry> {
        let e = self.entries.remove(key);
        if e.is_some() {
            self.stats.closed += 1;
        }
        e
    }

    /// Removes entries idle for longer than the timeout; returns how many.
    pub fn sweep(&mut self, now: Nanos) -> usize {
        let timeout = self.idle_timeout;
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.saturating_sub(e.last_seen) <= timeout);
        let removed = before - self.entries.len();
        self.stats.expired += removed as u64;
        removed
    }

    /// Applies `f`, in key order, to every entry pinned to backend `from`
    /// (health ejection: the caller re-pins `entry.backend` to a survivor
    /// and resets the entry's timing state so affinity entries are
    /// migrated instead of blackholing their flows). Returns how many
    /// entries matched.
    pub fn repin_backend(
        &mut self,
        from: usize,
        mut f: impl FnMut(&FlowKey, &mut FlowEntry),
    ) -> usize {
        let mut matched = 0usize;
        for (k, e) in self.entries.iter_mut() {
            if e.backend == from {
                f(k, e);
                matched += 1;
            }
        }
        self.stats.repinned += matched as u64;
        matched
    }

    /// Number of live flows pinned to each of `n` backends (diagnostics).
    pub fn per_backend_counts(&self, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n];
        for e in self.entries.values() {
            if e.backend < n {
                counts[e.backend] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleConfig, EnsembleTimeout};
    use std::net::Ipv4Addr;

    const MS: Nanos = 1_000_000;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            port,
            Ipv4Addr::new(10, 9, 9, 9),
            11211,
        )
    }

    fn timing() -> EnsembleFlowState {
        EnsembleTimeout::new(EnsembleConfig::default()).new_flow(0)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = FlowTable::new(5_000 * MS);
        assert!(t.is_empty());
        t.insert(key(1000), 1, timing(), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_mut(&key(1000)).unwrap().backend, 1);
        assert!(t.get_mut(&key(1001)).is_none());
        assert!(t.remove(&key(1000)).is_some());
        assert!(t.is_empty());
        assert_eq!(t.stats.inserted, 1);
        assert_eq!(t.stats.closed, 1);
    }

    #[test]
    fn affinity_survives_updates() {
        let mut t = FlowTable::new(5_000 * MS);
        t.insert(key(1), 0, timing(), 0);
        let e = t.get_mut(&key(1)).unwrap();
        e.last_seen = 100;
        e.packets += 1;
        assert_eq!(t.get_mut(&key(1)).unwrap().backend, 0);
        assert_eq!(t.get_mut(&key(1)).unwrap().packets, 1);
    }

    #[test]
    fn sweep_expires_only_idle() {
        let mut t = FlowTable::new(10 * MS);
        t.insert(key(1), 0, timing(), 0);
        t.insert(key(2), 1, timing(), 0);
        t.get_mut(&key(2)).unwrap().last_seen = 95 * MS;
        let removed = t.sweep(100 * MS);
        assert_eq!(removed, 1);
        assert!(t.get_mut(&key(1)).is_none(), "idle flow must be gone");
        assert!(t.get_mut(&key(2)).is_some(), "active flow must stay");
        assert_eq!(t.stats.expired, 1);
    }

    #[test]
    fn per_backend_counts() {
        let mut t = FlowTable::new(5_000 * MS);
        t.insert(key(1), 0, timing(), 0);
        t.insert(key(2), 1, timing(), 0);
        t.insert(key(3), 1, timing(), 0);
        assert_eq!(t.per_backend_counts(2), vec![1, 2]);
    }

    #[test]
    fn capacity_evicts_stalest_probed() {
        let mut t = FlowTable::with_capacity(5_000 * MS, 4);
        for (i, port) in (1u16..=4).enumerate() {
            t.insert(key(port), 0, timing(), i as u64 * MS);
        }
        assert_eq!(t.len(), 4);
        // A fifth insert evicts one (the stalest in the probe window).
        t.insert(key(5), 1, timing(), 10 * MS);
        assert_eq!(t.len(), 4, "capacity exceeded");
        assert_eq!(t.stats.evicted, 1);
        assert!(t.get_mut(&key(5)).is_some(), "new entry must be present");
    }

    #[test]
    fn flood_of_inserts_stays_bounded() {
        let mut t = FlowTable::with_capacity(5_000 * MS, 64);
        for port in 0..10_000u64 {
            t.insert(key(port as u16), 0, timing(), port);
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.stats.evicted, 10_000 - 64);
    }

    #[test]
    fn eviction_is_a_pure_function_of_the_op_sequence() {
        let build = || {
            let mut t = FlowTable::with_capacity(5_000 * MS, 32);
            for i in 0..500u64 {
                // Ports collide and last_seen values repeat, exercising
                // both the wrap-around probe and the tie-break on key.
                let port = 1 + (i * 7919 % 301) as u16;
                t.insert(key(port), (i % 7) as usize, timing(), i % 13);
            }
            t
        };
        let (a, b) = (build(), build());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.stats.evicted, b.stats.evicted);
        assert_eq!(a.per_backend_counts(7), b.per_backend_counts(7));
        let keys_a: Vec<FlowKey> = a.entries.keys().copied().collect();
        let keys_b: Vec<FlowKey> = b.entries.keys().copied().collect();
        assert_eq!(keys_a, keys_b, "tables diverged under identical ops");
    }

    #[test]
    fn probe_cursor_rotates_across_the_key_space() {
        let mut t = FlowTable::with_capacity(5_000 * MS, 64);
        for port in 0..200u16 {
            t.insert(key(port + 1), 0, timing(), u64::from(port));
        }
        // With a rotating 16-entry probe window the evictions must not
        // all come from the smallest keys: some small-port early keys
        // survive while later windows evict elsewhere.
        assert_eq!(t.len(), 64);
        assert_eq!(t.stats.evicted, 200 - 64);
    }

    #[test]
    fn capacity_one_table_replaces_its_lone_entry() {
        // Degenerate capacity: every distinct insert evicts the single
        // resident entry, and the table never exceeds one flow.
        let mut t = FlowTable::with_capacity(5_000 * MS, 1);
        t.insert(key(1), 0, timing(), 0);
        for port in 2..=5u16 {
            t.insert(key(port), 0, timing(), u64::from(port) * MS);
            assert_eq!(t.len(), 1, "capacity-1 table grew");
            assert!(t.get_mut(&key(port)).is_some(), "newest flow missing");
            assert!(t.get_mut(&key(port - 1)).is_none(), "old flow survived");
        }
        assert_eq!(t.stats.evicted, 4);
    }

    #[test]
    fn equal_last_seen_ties_evict_the_smallest_key() {
        // All entries share one last_seen, so approximate-LRU has no
        // recency signal: the tie must break on the key (smallest wins)
        // to stay a pure function of table contents.
        let mut t = FlowTable::with_capacity(5_000 * MS, 4);
        for port in [7u16, 3, 9, 5] {
            t.insert(key(port), 0, timing(), 42 * MS);
        }
        t.insert(key(8), 0, timing(), 42 * MS);
        assert_eq!(t.len(), 4);
        assert!(t.get_mut(&key(3)).is_none(), "smallest key must be evicted");
        for port in [5u16, 7, 8, 9] {
            assert!(t.get_mut(&key(port)).is_some(), "port {port} missing");
        }
    }

    #[test]
    fn capacity_below_probe_width_stays_exact_lru() {
        // With capacity 8 < PROBE (16) every probe wraps and sees the
        // whole table, so approximate LRU degenerates to exact LRU:
        // under strictly increasing last_seen the survivors are always
        // the most recent `capacity` inserts.
        let mut t = FlowTable::with_capacity(5_000 * MS, 8);
        for port in 1..=40u16 {
            t.insert(key(port), 0, timing(), u64::from(port) * MS);
        }
        assert_eq!(t.len(), 8);
        assert_eq!(t.stats.evicted, 32);
        for port in 1..=32u16 {
            assert!(
                t.get_mut(&key(port)).is_none(),
                "port {port} should be gone"
            );
        }
        for port in 33..=40u16 {
            assert!(t.get_mut(&key(port)).is_some(), "port {port} missing");
        }
    }

    #[test]
    fn reinsert_of_existing_key_does_not_evict() {
        let mut t = FlowTable::with_capacity(5_000 * MS, 2);
        t.insert(key(1), 0, timing(), 0);
        t.insert(key(2), 0, timing(), 1);
        t.insert(key(1), 0, timing(), 2); // same key: no eviction needed
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats.evicted, 0);
    }

    #[test]
    fn duplicate_insert_keeps_original() {
        let mut t = FlowTable::new(5_000 * MS);
        t.insert(key(1), 0, timing(), 0);
        t.insert(key(1), 1, timing(), 50);
        assert_eq!(
            t.get_mut(&key(1)).unwrap().backend,
            0,
            "affinity must not change"
        );
    }
}
