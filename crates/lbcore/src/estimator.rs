//! Per-backend latency aggregation feeding the controllers.
//!
//! `T_LB` samples from the ensemble estimator arrive tagged with the
//! backend the flow is pinned to. The controller wants a smoothed,
//! recency-weighted view per backend; this module provides a windowed
//! median (the robust control signal), an EWMA and a streaming p95 (for
//! reporting), and staleness tracking (a backend that stops receiving samples must not be judged on
//! ancient data forever).

use telemetry::P2Quantile;

use crate::Nanos;

/// Ring capacity for recent samples (time, value).
const WINDOW_CAP: usize = 64;
/// How many of the most recent samples the default count-based signal
/// uses.
const DEFAULT_COUNT_WINDOW: usize = 16;

/// Latency state for one backend.
#[derive(Debug, Clone)]
pub struct BackendEstimate {
    ewma: Option<f64>,
    alpha: f64,
    p95: P2Quantile,
    /// Ring buffer of the most recent `(time, value)` samples. `T_LB`
    /// occasionally produces wildly large values (merged batches) and
    /// small ones (split batches); a windowed quantile is robust to both
    /// where an EWMA is poisoned by a single merged-batch giant.
    window: [(Nanos, Nanos); WINDOW_CAP],
    window_len: usize,
    window_pos: usize,
    samples: u64,
    last_sample_at: Nanos,
}

impl BackendEstimate {
    fn new(alpha: f64) -> BackendEstimate {
        BackendEstimate {
            ewma: None,
            alpha,
            p95: P2Quantile::new(0.95),
            window: [(0, 0); WINDOW_CAP],
            window_len: 0,
            window_pos: 0,
            samples: 0,
            last_sample_at: 0,
        }
    }

    /// Feeds one latency sample (nanoseconds) observed at `now`.
    pub fn record(&mut self, latency: Nanos, now: Nanos) {
        let x = latency as f64;
        self.ewma = Some(match self.ewma {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        });
        self.p95.record(x);
        self.window[self.window_pos] = (now, latency);
        self.window_pos = (self.window_pos + 1) % WINDOW_CAP;
        self.window_len = (self.window_len + 1).min(WINDOW_CAP);
        self.samples += 1;
        self.last_sample_at = now;
    }

    /// The smoothed latency in nanoseconds, if any sample arrived yet.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// The most recent samples, newest last: either the last
    /// `DEFAULT_COUNT_WINDOW` (when `horizon` is `None`) or every retained
    /// sample not older than `horizon` before `now`.
    fn recent(&self, now: Nanos, horizon: Option<Nanos>) -> Vec<Nanos> {
        let take = match horizon {
            None => DEFAULT_COUNT_WINDOW.min(self.window_len),
            Some(_) => self.window_len,
        };
        let mut out = Vec::with_capacity(take);
        for i in 0..take {
            // Walk backwards from the most recent entry.
            let idx = (self.window_pos + WINDOW_CAP - 1 - i) % WINDOW_CAP;
            let (t, v) = self.window[idx];
            if let Some(h) = horizon {
                if now.saturating_sub(t) > h {
                    break; // older entries are older still
                }
            }
            out.push(v);
        }
        out
    }

    /// The median of the most recent samples — the robust control signal.
    pub fn windowed_median(&self) -> Option<f64> {
        self.windowed_quantile(0.5)
    }

    /// An arbitrary quantile of the most recent (count-based) samples.
    /// Higher quantiles (e.g. 0.9) make the signal variance-aware.
    pub fn windowed_quantile(&self, q: f64) -> Option<f64> {
        self.quantile_over(q, 0, None)
    }

    /// Quantile over a configurable window: count-based when `horizon`
    /// is `None`, or over every retained sample within `horizon` of
    /// `now`. A time-based horizon gives the signal *memory spanning a
    /// periodic disturbance* — the fix the bursty-congestion experiments
    /// call for.
    pub fn quantile_over(&self, q: f64, now: Nanos, horizon: Option<Nanos>) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut w = self.recent(now, horizon);
        if w.is_empty() {
            return None;
        }
        w.sort_unstable();
        let rank = ((q * w.len() as f64).ceil() as usize).clamp(1, w.len());
        Some(w[rank - 1] as f64)
    }

    /// Streaming p95 estimate in nanoseconds (0 before any samples).
    pub fn p95(&self) -> f64 {
        self.p95.value()
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Time of the most recent sample.
    pub fn last_sample_at(&self) -> Nanos {
        self.last_sample_at
    }
}

/// Estimates for all backends of one LB.
#[derive(Debug, Clone)]
pub struct BackendEstimator {
    backends: Vec<BackendEstimate>,
    staleness_limit: Nanos,
    signal_quantile: f64,
    signal_horizon: Option<Nanos>,
}

impl BackendEstimator {
    /// Creates estimators for `n` backends.
    ///
    /// `alpha` is the EWMA gain (0 < α ≤ 1; higher = more reactive).
    /// `staleness_limit` bounds how old a backend's estimate may be before
    /// [`BackendEstimator::fresh_estimate`] discards it. The control
    /// signal defaults to the windowed median; see
    /// [`BackendEstimator::with_signal_quantile`].
    pub fn new(n: usize, alpha: f64, staleness_limit: Nanos) -> BackendEstimator {
        assert!(n > 0, "at least one backend");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        BackendEstimator {
            backends: (0..n).map(|_| BackendEstimate::new(alpha)).collect(),
            staleness_limit,
            signal_quantile: 0.5,
            signal_horizon: None,
        }
    }

    /// Changes the windowed quantile used as the control signal.
    pub fn with_signal_quantile(mut self, q: f64) -> BackendEstimator {
        assert!(q > 0.0 && q <= 1.0, "signal quantile out of range");
        self.signal_quantile = q;
        self
    }

    /// Switches the control signal to a time-based window: the quantile is
    /// computed over every retained sample from the last `horizon_ns`
    /// (up to the ring capacity) instead of a fixed sample count.
    pub fn with_signal_horizon(mut self, horizon_ns: Nanos) -> BackendEstimator {
        assert!(horizon_ns > 0, "horizon must be positive");
        self.signal_horizon = Some(horizon_ns);
        self
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True if there are no backends (never constructible).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Records a sample for backend `b`.
    pub fn record(&mut self, b: usize, latency: Nanos, now: Nanos) {
        self.backends[b].record(latency, now);
    }

    /// One backend's state.
    pub fn backend(&self, b: usize) -> &BackendEstimate {
        &self.backends[b]
    }

    /// The control signal for backend `b` (windowed quantile, median by
    /// default), if it exists and is fresh at `now`.
    pub fn fresh_estimate(&self, b: usize, now: Nanos) -> Option<f64> {
        let e = &self.backends[b];
        let est = e.quantile_over(self.signal_quantile, now, self.signal_horizon)?;
        if now.saturating_sub(e.last_sample_at) > self.staleness_limit {
            None
        } else {
            Some(est)
        }
    }

    /// Backwards-compatible alias for [`BackendEstimator::fresh_estimate`].
    #[deprecated(note = "renamed to fresh_estimate (windowed median)")]
    pub fn fresh_ewma(&self, b: usize, now: Nanos) -> Option<f64> {
        self.fresh_estimate(b, now)
    }

    /// The backend with the highest fresh latency estimate, with its value
    /// — the controller's "worst server". `None` until at least two
    /// backends have fresh estimates (with fewer there is nothing to
    /// compare).
    pub fn worst(&self, now: Nanos) -> Option<(usize, f64)> {
        let fresh: Vec<(usize, f64)> = (0..self.backends.len())
            .filter_map(|b| self.fresh_estimate(b, now).map(|e| (b, e)))
            .collect();
        if fresh.len() < 2 {
            return None;
        }
        fresh.into_iter().max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The lowest fresh estimate among backends other than `excluding`.
    pub fn best_other(&self, excluding: usize, now: Nanos) -> Option<f64> {
        (0..self.backends.len())
            .filter(|&b| b != excluding)
            .filter_map(|b| self.fresh_estimate(b, now))
            .min_by(|a, b| a.total_cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Nanos = 1_000_000;

    #[test]
    fn ewma_converges() {
        let mut est = BackendEstimator::new(2, 0.2, 10_000 * MS);
        for i in 0..100 {
            est.record(0, MS, i);
        }
        let e = est.backend(0).ewma().unwrap();
        assert!((e - MS as f64).abs() < 1.0);
        assert_eq!(est.backend(0).samples(), 100);
        assert_eq!(est.backend(1).ewma(), None);
    }

    #[test]
    fn ewma_tracks_step() {
        let mut est = BackendEstimator::new(1, 0.2, 10_000 * MS);
        for i in 0..50 {
            est.record(0, MS, i);
        }
        for i in 50..100 {
            est.record(0, 2 * MS, i);
        }
        let e = est.backend(0).ewma().unwrap();
        assert!(e > 1.9 * MS as f64, "ewma {e} lags");
    }

    #[test]
    fn worst_picks_highest() {
        let mut est = BackendEstimator::new(3, 0.5, 10_000 * MS);
        est.record(0, MS, 0);
        est.record(1, 3 * MS, 0);
        est.record(2, 2 * MS, 0);
        let (b, v) = est.worst(1).unwrap();
        assert_eq!(b, 1);
        assert!((v - 3.0 * MS as f64).abs() < 1.0);
        assert!((est.best_other(1, 1).unwrap() - MS as f64).abs() < 1.0);
    }

    #[test]
    fn worst_requires_two_fresh() {
        let mut est = BackendEstimator::new(2, 0.5, 10_000 * MS);
        assert_eq!(est.worst(0), None);
        est.record(0, MS, 0);
        assert_eq!(est.worst(1), None, "one estimate is not comparable");
        est.record(1, 2 * MS, 1);
        assert!(est.worst(2).is_some());
    }

    #[test]
    fn staleness_discards_old_estimates() {
        let mut est = BackendEstimator::new(2, 0.5, 100 * MS);
        est.record(0, MS, 0);
        est.record(1, 5 * MS, 0);
        assert_eq!(est.worst(50 * MS).unwrap().0, 1);
        // Backend 1 goes silent; long past the limit its estimate is gone.
        est.record(0, MS, 400 * MS);
        assert_eq!(est.fresh_estimate(1, 400 * MS), None);
        assert_eq!(est.worst(400 * MS), None);
    }

    #[test]
    fn p95_reflects_tail() {
        let mut est = BackendEstimator::new(1, 0.2, 10_000 * MS);
        for i in 0..95 {
            est.record(0, MS, i);
        }
        for i in 95..100 {
            est.record(0, 10 * MS, i);
        }
        let p95 = est.backend(0).p95();
        assert!(p95 > MS as f64, "p95 {p95} ignores the tail");
    }

    #[test]
    fn time_horizon_sees_past_bursts() {
        // A burst of ten 2 ms samples at t = 0..1 ms, then forty fast
        // 100 µs samples over the next 4 ms. The count-window median has
        // forgotten the burst; a 10 ms horizon's p90 still remembers it.
        let mut e = BackendEstimator::new(1, 0.5, u64::MAX);
        for i in 0..10u64 {
            e.record(0, 2 * MS, i * 100_000);
        }
        for i in 0..40u64 {
            e.record(0, 100_000, MS + i * 100_000);
        }
        let now = 5 * MS;
        let count_median = e.backend(0).quantile_over(0.5, now, None).unwrap();
        assert!(
            count_median < 200_000.0,
            "count window should be all-fast: {count_median}"
        );
        let horizon_p90 = e.backend(0).quantile_over(0.9, now, Some(10 * MS)).unwrap();
        assert!(
            horizon_p90 >= 2.0 * MS as f64,
            "10 ms horizon p90 must remember the burst: {horizon_p90}"
        );
        // A horizon shorter than the data's age excludes the burst.
        let short_p90 = e.backend(0).quantile_over(0.9, now, Some(2 * MS)).unwrap();
        assert!(
            short_p90 < 200_000.0,
            "2 ms horizon should be all-fast: {short_p90}"
        );
    }

    #[test]
    fn estimator_with_horizon_controls_freshness_consistently() {
        let mut e = BackendEstimator::new(2, 0.5, 100 * MS).with_signal_horizon(50 * MS);
        e.record(0, MS, 0);
        e.record(1, 2 * MS, 0);
        // Within the horizon and freshness: comparable.
        assert!(e.worst(10 * MS).is_some());
        // Past the horizon the windows go empty even before staleness.
        assert_eq!(e.fresh_estimate(0, 60 * MS), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = BackendEstimator::new(1, 0.0, 0);
    }
}
