//! Feedback controllers: from per-backend latency estimates to weight
//! updates.
//!
//! The paper proposes one deliberately simple strategy (§3, "Simple load
//! balancing strategy"): every time a new latency sample arrives, shift a
//! fixed fraction α = 10% of total traffic away from the highest-latency
//! server, spread equally over the others. That is [`AlphaShift`].
//!
//! §5(4) asks for more sophisticated loops; two are provided for the
//! controller-comparison ablation:
//!
//! * [`AimdController`] — multiplicative decrease on the worst backend,
//!   additive recovery toward equal shares.
//! * [`ProportionalController`] — weights ∝ 1/latencyᵖ, recomputed from
//!   the estimates directly.

use crate::estimator::BackendEstimator;
use crate::weights::Weights;
use crate::Nanos;

/// A weight-update policy driven by backend latency estimates.
pub trait Controller {
    /// Considers an update at `now` given current `estimates`; mutates
    /// `weights` and returns `true` when it changed them (the dataplane
    /// then rebuilds its Maglev table).
    fn maybe_update(
        &mut self,
        now: Nanos,
        estimates: &BackendEstimator,
        weights: &mut Weights,
    ) -> bool;

    /// A short name for tables and figures.
    fn name(&self) -> &'static str;
}

/// The paper's controller: shift α of total traffic from the worst server
/// to all others, equally.
#[derive(Debug, Clone)]
pub struct AlphaShift {
    /// Fraction of total traffic moved per action (paper: 0.10).
    pub alpha: f64,
    /// Minimum relative latency gap (worst vs. best other) before acting;
    /// 0 reproduces the paper exactly, a small margin (e.g. 0.1) prevents
    /// weight random-walk when all backends are equally fast.
    pub margin: f64,
    /// Minimum time between actions. The paper allows an action per new
    /// sample; the interval is the knob that emulates "every sample"
    /// (set it to 0) or gentler pacing.
    pub min_interval: Nanos,
    last_action: Option<Nanos>,
}

impl AlphaShift {
    /// The paper's parameters: α = 10%, no margin, act on every sample.
    pub fn paper() -> AlphaShift {
        AlphaShift {
            alpha: 0.10,
            margin: 0.0,
            min_interval: 0,
            last_action: None,
        }
    }

    /// A damped variant used by the default scenarios: 10% shifts, 10%
    /// margin, at most one action per millisecond.
    pub fn damped() -> AlphaShift {
        AlphaShift {
            alpha: 0.10,
            margin: 0.10,
            min_interval: 1_000_000,
            last_action: None,
        }
    }

    /// Returns a copy with a different shift fraction α.
    pub fn with_alpha(mut self, alpha: f64) -> AlphaShift {
        assert!((0.0..1.0).contains(&alpha), "alpha out of range");
        self.alpha = alpha;
        self
    }

    /// Returns a copy with a different action pacing interval.
    pub fn with_min_interval(mut self, min_interval: Nanos) -> AlphaShift {
        self.min_interval = min_interval;
        self
    }
}

impl Controller for AlphaShift {
    fn maybe_update(
        &mut self,
        now: Nanos,
        estimates: &BackendEstimator,
        weights: &mut Weights,
    ) -> bool {
        if let Some(last) = self.last_action {
            if now.saturating_sub(last) < self.min_interval {
                return false;
            }
        }
        let Some((worst, worst_lat)) = estimates.worst(now) else {
            return false;
        };
        if self.margin > 0.0 {
            let Some(best) = estimates.best_other(worst, now) else {
                return false;
            };
            if worst_lat < best * (1.0 + self.margin) {
                return false;
            }
        }
        let moved = weights.shift_from(worst, self.alpha);
        if moved > 0.0 {
            self.last_action = Some(now);
            true
        } else {
            false
        }
    }

    fn name(&self) -> &'static str {
        "alpha-shift"
    }
}

/// AIMD: multiplicative decrease of the worst backend's weight,
/// additive increase of everyone toward equal shares when no action is
/// needed (recovery).
#[derive(Debug, Clone)]
pub struct AimdController {
    /// Multiplicative decrease factor applied to the worst backend (< 1).
    pub beta: f64,
    /// Additive recovery step (fraction of the gap to equal share healed
    /// per action period).
    pub recovery: f64,
    /// Same margin semantics as [`AlphaShift`].
    pub margin: f64,
    /// Minimum time between actions.
    pub min_interval: Nanos,
    last_action: Option<Nanos>,
}

impl AimdController {
    /// Reasonable defaults: β = 0.7, 5% recovery, 10% margin, 1 ms pacing.
    pub fn new() -> AimdController {
        AimdController {
            beta: 0.7,
            recovery: 0.05,
            margin: 0.10,
            min_interval: 1_000_000,
            last_action: None,
        }
    }
}

impl Default for AimdController {
    fn default() -> Self {
        Self::new()
    }
}

impl Controller for AimdController {
    fn maybe_update(
        &mut self,
        now: Nanos,
        estimates: &BackendEstimator,
        weights: &mut Weights,
    ) -> bool {
        if let Some(last) = self.last_action {
            if now.saturating_sub(last) < self.min_interval {
                return false;
            }
        }
        let n = weights.len();
        let equal = 1.0 / n as f64;
        let decrease = match estimates.worst(now) {
            Some((worst, worst_lat)) => {
                let trip = match estimates.best_other(worst, now) {
                    Some(best) => worst_lat >= best * (1.0 + self.margin),
                    None => false,
                };
                trip.then_some(worst)
            }
            None => None,
        };
        let changed = match decrease {
            Some(worst) => {
                weights.scale(worst, self.beta);
                true
            }
            None => {
                // Recovery: move every weight a step toward equal share.
                let current = weights.as_slice().to_vec();
                let healed: Vec<f64> = current
                    .iter()
                    .map(|&w| w + self.recovery * (equal - w))
                    .collect();
                let before = weights.clone();
                weights.set(&healed);
                weights.max_diff(&before) > 1e-6
            }
        };
        if changed {
            self.last_action = Some(now);
        }
        changed
    }

    fn name(&self) -> &'static str {
        "aimd"
    }
}

/// Latency-proportional weights: wᵢ ∝ (1/latencyᵢ)ᵖ. Backends without a
/// fresh estimate keep their current weight.
#[derive(Debug, Clone)]
pub struct ProportionalController {
    /// Exponent p (1 = inverse-latency, 2 = aggressive).
    pub power: f64,
    /// Minimum time between recomputations.
    pub min_interval: Nanos,
    last_action: Option<Nanos>,
}

impl ProportionalController {
    /// Inverse-latency weighting recomputed at most every millisecond.
    pub fn new(power: f64) -> ProportionalController {
        assert!(power > 0.0, "power must be positive");
        ProportionalController {
            power,
            min_interval: 1_000_000,
            last_action: None,
        }
    }
}

impl Controller for ProportionalController {
    fn maybe_update(
        &mut self,
        now: Nanos,
        estimates: &BackendEstimator,
        weights: &mut Weights,
    ) -> bool {
        if let Some(last) = self.last_action {
            if now.saturating_sub(last) < self.min_interval {
                return false;
            }
        }
        let n = weights.len();
        let mut fresh = 0;
        let mut target = weights.as_slice().to_vec();
        for (b, t) in target.iter_mut().enumerate().take(n) {
            if let Some(e) = estimates.fresh_estimate(b, now) {
                if e > 0.0 {
                    *t = (1.0 / e).powf(self.power);
                    fresh += 1;
                }
            }
        }
        if fresh < 2 {
            return false; // nothing to differentiate
        }
        let before = weights.clone();
        weights.set(&target);
        let changed = weights.max_diff(&before) > 1e-4;
        if changed {
            self.last_action = Some(now);
        }
        changed
    }

    fn name(&self) -> &'static str {
        "proportional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Nanos = 1_000_000;

    fn estimates_two(now: Nanos, lat0: Nanos, lat1: Nanos) -> BackendEstimator {
        let mut e = BackendEstimator::new(2, 1.0, 10_000 * MS);
        e.record(0, lat0, now);
        e.record(1, lat1, now);
        e
    }

    #[test]
    fn alpha_shift_moves_away_from_worst() {
        let mut ctl = AlphaShift::paper();
        let mut w = Weights::equal(2, 0.01);
        let est = estimates_two(0, MS, 3 * MS);
        assert!(ctl.maybe_update(1, &est, &mut w));
        assert!(
            (w.get(1) - 0.4).abs() < 1e-9,
            "worst lost 10%: {}",
            w.get(1)
        );
        assert!((w.get(0) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn alpha_shift_margin_suppresses_noise() {
        let mut ctl = AlphaShift {
            margin: 0.10,
            ..AlphaShift::paper()
        };
        let mut w = Weights::equal(2, 0.01);
        // 5% latency difference < 10% margin: no action.
        let est = estimates_two(0, 1_000_000, 1_050_000);
        assert!(!ctl.maybe_update(1, &est, &mut w));
        assert!((w.get(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alpha_shift_respects_min_interval() {
        let mut ctl = AlphaShift {
            min_interval: 10 * MS,
            ..AlphaShift::paper()
        };
        let mut w = Weights::equal(2, 0.01);
        let est = estimates_two(0, MS, 3 * MS);
        assert!(ctl.maybe_update(0, &est, &mut w));
        assert!(
            !ctl.maybe_update(5 * MS, &est, &mut w),
            "acted within interval"
        );
        assert!(ctl.maybe_update(11 * MS, &est, &mut w));
    }

    #[test]
    fn alpha_shift_needs_comparable_estimates() {
        let mut ctl = AlphaShift::paper();
        let mut w = Weights::equal(2, 0.01);
        let mut est = BackendEstimator::new(2, 1.0, 10_000 * MS);
        assert!(!ctl.maybe_update(0, &est, &mut w));
        est.record(0, MS, 0);
        assert!(!ctl.maybe_update(1, &est, &mut w));
    }

    #[test]
    fn repeated_shifts_converge_to_floor() {
        let mut ctl = AlphaShift::paper();
        let mut w = Weights::equal(2, 0.05);
        let est = estimates_two(0, MS, 5 * MS);
        for t in 0..100 {
            ctl.maybe_update(t, &est, &mut w);
        }
        assert!((w.get(1) - 0.05).abs() < 1e-9, "worst pinned at floor");
        assert!((w.get(0) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn aimd_decreases_then_recovers() {
        let mut ctl = AimdController::new();
        let mut w = Weights::equal(2, 0.01);
        let est = estimates_two(0, MS, 4 * MS);
        assert!(ctl.maybe_update(0, &est, &mut w));
        let after_drop = w.get(1);
        assert!(after_drop < 0.45);
        // Now latencies equalize: recovery pulls weights back toward 0.5.
        let est = estimates_two(2 * MS, MS, MS);
        let mut t = 2 * MS;
        for _ in 0..200 {
            ctl.maybe_update(t, &est, &mut w);
            t += 2 * MS;
        }
        assert!((w.get(1) - 0.5).abs() < 0.01, "recovered to {}", w.get(1));
    }

    #[test]
    fn proportional_matches_inverse_latency() {
        let mut ctl = ProportionalController::new(1.0);
        let mut w = Weights::equal(2, 0.01);
        let est = estimates_two(0, MS, 3 * MS);
        assert!(ctl.maybe_update(0, &est, &mut w));
        // 1/1 : 1/3 normalized = 0.75 : 0.25.
        assert!((w.get(0) - 0.75).abs() < 0.01, "{}", w.get(0));
        assert!((w.get(1) - 0.25).abs() < 0.01);
    }

    #[test]
    fn controller_names() {
        assert_eq!(AlphaShift::paper().name(), "alpha-shift");
        assert_eq!(AimdController::new().name(), "aimd");
        assert_eq!(ProportionalController::new(1.0).name(), "proportional");
    }
}
