//! Periodic weight-gossip merge for a multi-LB tier.
//!
//! Behind an ECMP tier each load balancer sees only the flows that hash
//! to it, so its in-band feedback loop runs on a 1/N sample of the
//! traffic. With N large the per-LB signal thins out and reaction slows
//! (the partial-visibility regime). Gossip is the counter-measure: every
//! `period`, each LB blends its own weight vector toward the mean of its
//! peers' vectors, sharing what each shard has learned without sharing
//! raw samples.
//!
//! The merge is *mask-respecting*: the blended vector is re-normalized
//! through [`Weights::set_with_ejections`] with the **local** ejection
//! mask, so gossip can never resurrect a backend this LB has ejected,
//! and the floor/normalization invariants (survivors ≥ floor, sum = 1,
//! ejected pinned to exactly zero) hold after every merge.
//!
//! Transport is the caller's problem: in the simulator the experiment
//! driver steps the clock in `period` increments and applies
//! [`merge_weights`] between steps, which keeps the whole exchange
//! deterministic and bit-reproducible.

use crate::weights::Weights;

/// Weight changes smaller than this are treated as "nothing happened":
/// the caller skips the (expensive) forwarding-table rebuild.
const MERGE_EPSILON: f64 = 1e-12;

/// Gossip cadence and blend strength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// Nanoseconds between gossip rounds.
    pub period_ns: u64,
    /// How far each round pulls the local vector toward the peer mean:
    /// 0 = isolated (no-op), 1 = adopt the peer mean outright. Values are
    /// clamped to `[0, 1]` at merge time.
    pub mix: f64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            period_ns: 50_000_000, // 50 ms — a few controller periods
            mix: 0.5,
        }
    }
}

/// Blends `local` toward the element-wise mean of `peers`, then
/// re-normalizes through the local `ejected` mask.
///
/// Peers whose vector length does not match `local` are skipped (a tier
/// mid-reconfiguration must not poison the merge). Returns `true` only
/// when a merge was applied *and* moved at least one share by more than
/// an epsilon — the caller uses this to decide whether to rebuild its
/// forwarding table. Returns `false` for an empty/mismatched peer set,
/// a non-positive mix, or an all-ejected mask (in which case `local` is
/// left untouched, mirroring [`Weights::set_with_ejections`]).
pub fn merge_weights(local: &mut Weights, peers: &[&[f64]], mix: f64, ejected: &[bool]) -> bool {
    let n = local.len();
    if n == 0 || ejected.len() != n {
        return false;
    }
    let mix = mix.clamp(0.0, 1.0);
    if mix <= 0.0 {
        return false;
    }
    let mut mean = vec![0.0f64; n];
    let mut used = 0u32;
    for peer in peers {
        if peer.len() != n {
            continue;
        }
        for (m, &p) in mean.iter_mut().zip(peer.iter()) {
            *m += p;
        }
        used += 1;
    }
    if used == 0 {
        return false;
    }
    let inv = 1.0 / f64::from(used);
    let blended: Vec<f64> = local
        .as_slice()
        .iter()
        .zip(mean.iter())
        .map(|(&l, &m)| ((1.0 - mix) * l + mix * m * inv).max(0.0))
        .collect();
    let before: Vec<f64> = local.as_slice().to_vec();
    if !local.set_with_ejections(&blended, ejected) {
        return false;
    }
    local
        .as_slice()
        .iter()
        .zip(before.iter())
        .any(|(&a, &b)| (a - b).abs() > MERGE_EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_ejections(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    #[test]
    fn empty_peer_set_is_a_no_op() {
        let mut w = Weights::equal(3, 0.02);
        let before = w.clone();
        assert!(!merge_weights(&mut w, &[], 0.5, &no_ejections(3)));
        assert!(w.max_diff(&before) < 1e-15);
    }

    #[test]
    fn zero_mix_is_a_no_op() {
        let mut w = Weights::equal(2, 0.0);
        let peer = [0.9, 0.1];
        assert!(!merge_weights(&mut w, &[&peer], 0.0, &no_ejections(2)));
        assert!((w.get(0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn mismatched_peers_are_skipped() {
        let mut w = Weights::equal(2, 0.0);
        let short = [1.0];
        let before = w.clone();
        assert!(!merge_weights(&mut w, &[&short], 0.5, &no_ejections(2)));
        assert!(w.max_diff(&before) < 1e-15);
    }

    #[test]
    fn full_mix_adopts_the_peer_mean() {
        let mut w = Weights::equal(2, 0.0);
        let a = [0.9, 0.1];
        let b = [0.7, 0.3];
        assert!(merge_weights(&mut w, &[&a, &b], 1.0, &no_ejections(2)));
        assert!((w.get(0) - 0.8).abs() < 1e-9);
        assert!((w.get(1) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn half_mix_lands_halfway_and_stays_normalized() {
        let mut w = Weights::equal(2, 0.0);
        let peer = [1.0, 0.0];
        assert!(merge_weights(&mut w, &[&peer], 0.5, &no_ejections(2)));
        assert!((w.get(0) - 0.75).abs() < 1e-9);
        let sum: f64 = w.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gossip_cannot_resurrect_an_ejected_backend() {
        let mut w = Weights::equal(3, 0.02);
        assert!(w.set_with_ejections(&[1.0, 1.0, 1.0], &[false, false, true]));
        // Peer still believes in backend 2.
        let peer = [0.2, 0.2, 0.6];
        merge_weights(&mut w, &[&peer], 0.8, &[false, false, true]);
        assert_eq!(w.get(2).to_bits(), 0.0f64.to_bits());
        let sum: f64 = w.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_ejected_refuses_and_preserves_shares() {
        let mut w = Weights::equal(2, 0.02);
        let before = w.clone();
        let peer = [0.5, 0.5];
        assert!(!merge_weights(&mut w, &[&peer], 0.5, &[true, true]));
        assert!(w.max_diff(&before) < 1e-15);
    }

    #[test]
    fn identical_vectors_report_no_change() {
        let mut w = Weights::equal(4, 0.01);
        let peer = w.as_slice().to_vec();
        assert!(!merge_weights(&mut w, &[&peer], 0.5, &no_ejections(4)));
    }
}
