//! The load-balancer node: binds the `lbcore` algorithms to the simulator.
//!
//! [`LbNode`] is a one-armed layer-4 load balancer under Direct Server
//! Return, mirroring the paper's Cilium/XDP deployment:
//!
//! * it observes **only client→VIP traffic** (responses go server→client
//!   directly, never crossing the LB),
//! * per packet it runs the fast path — four-tuple parse, flow-table
//!   lookup, Maglev lookup for new flows, destination rewrite, forward —
//! * and, when measurement is enabled, executes `ENSEMBLETIMEOUT` per
//!   packet, aggregates per-backend latency, and lets a feedback
//!   controller reshape the Maglev weights.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod node;

pub use node::{LbConfig, LbNode, LbStats, MeasureMode, RoutingPolicy};
