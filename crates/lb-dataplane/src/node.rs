//! The LB node implementation.

use std::net::Ipv4Addr;

use netpkt::{FlowKey, MacAddr, Packet, TcpFlags};
use netsim::{Ctx, Duration, LinkId, Node, Time, TimerToken};
use telemetry::span::{pack_addr, HopKind};
use telemetry::{Journal, JournalEvent, JournalMode, MetricsRegistry, ScalarSeries, WeightCause};

use lbcore::{
    BackendEstimator, Controller, EnsembleConfig, EnsembleTimeout, FlowTable, HealthConfig,
    HealthState, HealthTracker, MaglevTable, Weights,
};

/// Metric ids into [`LbNode`]'s registry. Ids are indices in registration
/// order; `COUNTER_NAMES` *is* that order, so the constants below must
/// stay aligned with it.
mod m {
    use telemetry::{CounterId, GaugeId, HistId};

    pub const COUNTER_NAMES: &[&str] = &[
        "rx",
        "forwarded",
        "dropped",
        "new_flows",
        "fallback_forwards",
        "flow_closes",
        "samples",
        "oob_reports",
        "table_rebuilds",
        "no_backend_drops",
        "ejections",
        "readmissions",
        "flows_repinned",
        "abort_signals",
        "gossip_merges",
    ];
    pub const RX: CounterId = CounterId(0);
    pub const FORWARDED: CounterId = CounterId(1);
    pub const DROPPED: CounterId = CounterId(2);
    pub const NEW_FLOWS: CounterId = CounterId(3);
    pub const FALLBACK_FORWARDS: CounterId = CounterId(4);
    pub const FLOW_CLOSES: CounterId = CounterId(5);
    pub const SAMPLES: CounterId = CounterId(6);
    pub const OOB_REPORTS: CounterId = CounterId(7);
    pub const TABLE_REBUILDS: CounterId = CounterId(8);
    pub const NO_BACKEND_DROPS: CounterId = CounterId(9);
    pub const EJECTIONS: CounterId = CounterId(10);
    pub const READMISSIONS: CounterId = CounterId(11);
    pub const FLOWS_REPINNED: CounterId = CounterId(12);
    pub const ABORT_SIGNALS: CounterId = CounterId(13);
    pub const GOSSIP_MERGES: CounterId = CounterId(14);

    /// 1.0 while every backend is ejected, else 0.0.
    pub const NO_BACKEND_GAUGE: GaugeId = GaugeId(0);
    /// Distribution of in-band `T_LB` samples (nanoseconds).
    pub const T_LB_HIST: HistId = HistId(0);
}

/// How new connections are assigned to backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Weighted Maglev (the paper's design): the feedback controller
    /// reshapes backend weights and the table is rebuilt to match.
    WeightedMaglev,
    /// Latency-aware power-of-two-choices: each new connection hashes to
    /// two candidate backends and picks the one with the lower fresh
    /// in-band latency estimate (falling back to the first candidate when
    /// estimates are missing). No controller, no table rebuilds — the
    /// measurements drive per-connection decisions directly.
    PowerOfTwo,
}

/// What the LB does with the measurement machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureMode {
    /// Plain Maglev: no per-packet measurement at all (the baseline).
    Off,
    /// Run Algorithms 1/2 and record samples, but never change weights
    /// (used to evaluate measurement accuracy, Fig. 2).
    Observe,
    /// Measure and let the controller adapt weights (the paper's design).
    Control,
}

/// Load-balancer configuration.
pub struct LbConfig {
    /// The virtual IP clients address.
    pub vip: Ipv4Addr,
    /// Backend addresses, indexed by backend id.
    pub backends: Vec<Ipv4Addr>,
    /// Maglev table size (prime).
    pub table_size: usize,
    /// Ensemble estimator parameters.
    pub ensemble: EnsembleConfig,
    /// Measurement/control mode.
    pub mode: MeasureMode,
    /// New-connection routing policy.
    pub policy: RoutingPolicy,
    /// Whether in-band measurement (Algorithms 1/2) runs. Disable it to
    /// drive the controller purely from out-of-band reports — the §2.3
    /// baseline the paper argues against.
    pub inband: bool,
    /// Control address for out-of-band reports: UDP datagrams to this
    /// `(ip, port)` carrying `netpkt::oob` reports feed the per-backend
    /// estimator directly.
    pub control_addr: Option<(Ipv4Addr, u16)>,
    /// The feedback controller (used in [`MeasureMode::Control`]).
    pub controller: Box<dyn Controller>,
    /// Weight floor (see [`Weights`]).
    pub weight_floor: f64,
    /// EWMA gain for per-backend latency.
    pub estimator_alpha: f64,
    /// Windowed quantile used as the control signal (0.5 = median;
    /// higher values are variance-aware).
    pub signal_quantile: f64,
    /// Optional time horizon for the signal window: compute the quantile
    /// over samples from the last `horizon` instead of a fixed count —
    /// signal memory for periodic disturbances.
    pub signal_horizon: Option<Duration>,
    /// Estimates older than this are ignored by the controller.
    pub estimator_staleness: Duration,
    /// Whether established connections are pinned to their backend via the
    /// flow table (§2.5's connection affinity requirement). Disabling this
    /// routes *every* packet through the current Maglev table — the
    /// configuration the ABL-PCC experiment uses to show how many
    /// connections a weight change breaks without connection tracking.
    pub affinity: bool,
    /// Idle timeout for flow-table entries.
    pub flow_idle_timeout: Duration,
    /// Flow-table capacity (entries); at capacity, inserts evict
    /// approximately-LRU victims, bounding LB memory under SYN floods.
    pub flow_table_capacity: usize,
    /// Period of the flow-table sweep timer.
    pub sweep_interval: Duration,
    /// Maximum number of raw `(time, backend, T_LB)` samples retained for
    /// offline analysis; beyond this, samples still feed the estimators
    /// but are not logged.
    pub sample_log_limit: usize,
    /// Backend health tracking (crash/stall ejection). Only active in
    /// in-band [`MeasureMode::Control`] with [`RoutingPolicy::WeightedMaglev`]:
    /// the detector's "offered traffic but producing no samples" signal
    /// needs the in-band measurement path, and ejection acts by zeroing
    /// table weights. `None` disables health tracking entirely.
    pub health: Option<HealthConfig>,
    /// Decision-journal mode. Defaults to [`JournalMode::Off`]; emission
    /// sites are gated on it and the journal never sends packets or arms
    /// timers, so pinned determinism traces are byte-identical either way.
    pub journal: JournalMode,
    /// Period for sampling the metrics registry into per-counter
    /// [`telemetry::BinnedSeries`]. `None` (the default) arms no timer at
    /// all — enabling this *does* add timer events to the simulation
    /// schedule, which perturbs pinned traces, hence opt-in.
    pub metrics_interval: Option<Duration>,
}

impl LbConfig {
    /// A latency-aware LB with the paper's parameters and a given
    /// controller.
    pub fn latency_aware(
        vip: Ipv4Addr,
        backends: Vec<Ipv4Addr>,
        controller: Box<dyn Controller>,
    ) -> LbConfig {
        LbConfig {
            vip,
            backends,
            table_size: lbcore::maglev::DEFAULT_TABLE_SIZE,
            // Control mode defaults to the robust cliff rule; see the
            // CliffRule docs for why the paper's rule fails on KV traffic.
            ensemble: EnsembleConfig::robust(),
            mode: MeasureMode::Control,
            policy: RoutingPolicy::WeightedMaglev,
            inband: true,
            control_addr: None,
            controller,
            weight_floor: 0.02,
            estimator_alpha: 0.2,
            signal_quantile: 0.5,
            signal_horizon: None,
            estimator_staleness: Duration::from_millis(500),
            affinity: true,
            flow_idle_timeout: Duration::from_secs(5),
            flow_table_capacity: 1 << 20,
            sweep_interval: Duration::from_secs(1),
            sample_log_limit: 1 << 20,
            health: Some(HealthConfig::default()),
            journal: JournalMode::Off,
            metrics_interval: None,
        }
    }

    /// The plain-Maglev baseline (no measurement, no adaptation).
    pub fn baseline(vip: Ipv4Addr, backends: Vec<Ipv4Addr>) -> LbConfig {
        let mut cfg = Self::latency_aware(vip, backends, Box::new(lbcore::AlphaShift::paper()));
        cfg.mode = MeasureMode::Off;
        cfg
    }

    /// Measurement-only mode (Fig. 2 experiments). Uses the paper's
    /// argmax-ratio cliff rule for figure fidelity.
    pub fn observer(vip: Ipv4Addr, backends: Vec<Ipv4Addr>) -> LbConfig {
        let mut cfg = Self::latency_aware(vip, backends, Box::new(lbcore::AlphaShift::paper()));
        cfg.mode = MeasureMode::Observe;
        cfg.ensemble = EnsembleConfig::default();
        cfg
    }
}

/// Snapshot of the LB counters. The live counters are named entries in
/// the node's [`MetricsRegistry`] (see [`LbNode::metrics`]); this struct
/// is assembled on demand by [`LbNode::stats`] so call sites keep the
/// familiar field access.
#[derive(Debug, Default, Clone, Copy)]
pub struct LbStats {
    /// Packets received.
    pub rx: u64,
    /// Packets forwarded to a backend.
    pub forwarded: u64,
    /// Packets dropped (parse failure or not addressed to the VIP).
    pub dropped: u64,
    /// New flows admitted (SYN → Maglev assignment).
    pub new_flows: u64,
    /// Packets forwarded via direct Maglev lookup because their flow had
    /// no table entry (e.g. swept, or post-FIN stragglers).
    pub fallback_forwards: u64,
    /// Client FINs/RSTs observed (flow entries retired).
    pub flow_closes: u64,
    /// `T_LB` samples produced by the ensemble.
    pub samples: u64,
    /// Out-of-band reports accepted on the control address.
    pub oob_reports: u64,
    /// Maglev table rebuilds triggered by the controller.
    pub table_rebuilds: u64,
    /// Packets dropped because every backend was ejected (drop-with-counter
    /// beats blackholing into a known-dead pin).
    pub no_backend_drops: u64,
    /// Backends ejected by the health tracker (cumulative).
    pub ejections: u64,
    /// Backends readmitted after probation (cumulative).
    pub readmissions: u64,
    /// Flow-table entries migrated off an ejected backend.
    pub flows_repinned: u64,
    /// SYN retransmissions into a pin that never produced data — treated
    /// as RTO-abort evidence against the pinned backend.
    pub abort_signals: u64,
    /// Weight-gossip merges that actually moved the weights (multi-LB
    /// tier; see [`LbNode::apply_gossip`]).
    pub gossip_merges: u64,
}

/// A raw logged sample.
#[derive(Debug, Clone, Copy)]
pub struct LoggedSample {
    /// When the sample was produced.
    pub at: Time,
    /// Backend the flow was pinned to.
    pub backend: usize,
    /// The flow that produced the sample.
    pub flow: FlowKey,
    /// Age of the flow-table entry when the sample was produced (ns).
    pub flow_age: u64,
    /// Packets seen on the flow so far.
    pub flow_packets: u64,
    /// The `T_LB` estimate, in nanoseconds.
    pub t_lb: u64,
}

const SWEEP_TOKEN: TimerToken = TimerToken(1);
const HEALTH_TOKEN: TimerToken = TimerToken(2);
const METRICS_TOKEN: TimerToken = TimerToken(3);

/// The load-balancer node. See the crate docs.
pub struct LbNode {
    cfg: LbConfig,
    /// One forwarding link per backend (the "LB → server paths").
    backend_links: Vec<LinkId>,
    mac: MacAddr,
    weights: Weights,
    table: MaglevTable,
    flows: FlowTable,
    /// One ensemble per backend: once latencies diverge, a single global
    /// timeout δₑ cannot serve both a 250 µs backend and a 1.3 ms backend
    /// (one merges batches while the other splits them), so sample-cliff
    /// detection runs per backend. A flow uses the ensemble of the backend
    /// it is pinned to.
    ensembles: Vec<EnsembleTimeout>,
    estimator: BackendEstimator,
    /// Raw sample log (bounded by `cfg.sample_log_limit`).
    samples: Vec<LoggedSample>,
    /// Weight of each backend over time (one series per backend).
    weight_series: Vec<ScalarSeries>,
    /// Health state machine (None when disabled; see [`LbConfig::health`]).
    health: Option<HealthTracker>,
    /// Cumulative packets forwarded per backend — the "offered traffic"
    /// input to the health tracker.
    fwd_per_backend: Vec<u64>,
    /// Cumulative *credible* `T_LB` samples per backend — samples at or
    /// below [`HealthConfig::sample_ceiling`]. A dead backend's RTO
    /// retransmission bursts still produce batch-gap samples (valued at
    /// the backoff interval), which must not count as liveness evidence.
    live_samples: Vec<u64>,
    /// Which backends are currently ejected (mirrors the tracker; kept
    /// separately so the fast path and controller never touch it).
    ejected: Vec<bool>,
    /// Routing class per backend at the last rebuild: 0 = full weight
    /// (Healthy/Suspect), 1 = probe trickle (Probation), 2 = zero
    /// (Ejected). A health transition only forces a table rebuild when
    /// this vector changes — Healthy↔Suspect churn is free.
    route_class: Vec<u8>,
    /// True while every backend is ejected: the fast path drops packets
    /// (with a counter) instead of forwarding into dead pins.
    no_backend: bool,
    /// Reusable buffers for [`LbNode::health_epoch`]'s route-class and raw
    /// weight rebuilds, so a health transition allocates nothing.
    class_scratch: Vec<u8>,
    raw_scratch: Vec<f64>,
    /// Named counters/gauges/histograms (see [`LbNode::stats`] for the
    /// counter snapshot and the `m` module for the id layout).
    metrics: MetricsRegistry,
    /// The decision journal (off unless [`LbConfig::journal`] enables it).
    journal: Journal,
    /// Weights as of the previous [`LbNode::record_weights`], used to
    /// derive victim/moved-mass for journal `WeightUpdate` events. Only
    /// maintained while the journal is enabled.
    weights_snapshot: Vec<f64>,
    /// Flight-recorder dump captured at the first `no_backend` drop
    /// (NDJSON of the journal's retained events at that moment).
    flight_dump: Option<String>,
}

impl LbNode {
    /// Creates the LB with one forwarding link per backend (order matches
    /// `cfg.backends`).
    pub fn new(cfg: LbConfig, mac: MacAddr, backend_links: Vec<LinkId>) -> LbNode {
        assert!(!cfg.backends.is_empty(), "LB needs at least one backend");
        assert_eq!(
            backend_links.len(),
            cfg.backends.len(),
            "one forwarding link per backend required"
        );
        let n = cfg.backends.len();
        let weights = Weights::equal(n, cfg.weight_floor);
        let table = MaglevTable::build(weights.as_slice(), cfg.table_size);
        let flows =
            FlowTable::with_capacity(cfg.flow_idle_timeout.as_nanos(), cfg.flow_table_capacity);
        let ensembles = (0..n)
            .map(|_| EnsembleTimeout::new(cfg.ensemble.clone()))
            .collect();
        let mut estimator =
            BackendEstimator::new(n, cfg.estimator_alpha, cfg.estimator_staleness.as_nanos())
                .with_signal_quantile(cfg.signal_quantile);
        if let Some(h) = cfg.signal_horizon {
            estimator = estimator.with_signal_horizon(h.as_nanos());
        }
        // Health tracking needs the in-band sample stream (the silence
        // signal) and a weighted table to act on; out-of-band variants may
        // report slower than the silence window and would false-eject.
        let health = match cfg.health {
            Some(h)
                if cfg.mode == MeasureMode::Control
                    && cfg.policy == RoutingPolicy::WeightedMaglev
                    && cfg.inband =>
            {
                Some(HealthTracker::new(n, h))
            }
            _ => None,
        };
        let mut metrics = MetricsRegistry::new();
        for &name in m::COUNTER_NAMES {
            let _ = metrics.counter(name);
        }
        let _ = metrics.gauge("no_backend");
        let _ = metrics.histogram("t_lb_ns");
        if let Some(iv) = cfg.metrics_interval {
            metrics.enable_sampling(iv.as_nanos());
        }
        let journal = Journal::new(cfg.journal);
        let weights_snapshot = weights.as_slice().to_vec();
        LbNode {
            cfg,
            backend_links,
            mac,
            weights,
            table,
            flows,
            ensembles,
            estimator,
            samples: Vec::new(),
            weight_series: (0..n).map(|_| ScalarSeries::new()).collect(),
            health,
            fwd_per_backend: vec![0; n],
            live_samples: vec![0; n],
            ejected: vec![false; n],
            route_class: vec![0; n],
            no_backend: false,
            class_scratch: Vec::new(),
            raw_scratch: Vec::new(),
            metrics,
            journal,
            weights_snapshot,
            flight_dump: None,
        }
    }

    /// The current weight vector.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The logged raw samples.
    pub fn samples(&self) -> &[LoggedSample] {
        &self.samples
    }

    /// Weight history of backend `b`.
    pub fn weight_series(&self, b: usize) -> &ScalarSeries {
        &self.weight_series[b]
    }

    /// Backend `b`'s ensemble estimator (for epoch-decision introspection).
    pub fn ensemble(&self, b: usize) -> &EnsembleTimeout {
        &self.ensembles[b]
    }

    /// The per-backend estimator.
    pub fn estimator(&self) -> &BackendEstimator {
        &self.estimator
    }

    /// Live flow-table entries.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The health tracker, when enabled.
    pub fn health(&self) -> Option<&HealthTracker> {
        self.health.as_ref()
    }

    /// Snapshot of the LB counters, assembled from the metrics registry.
    pub fn stats(&self) -> LbStats {
        LbStats {
            rx: self.metrics.get(m::RX),
            forwarded: self.metrics.get(m::FORWARDED),
            dropped: self.metrics.get(m::DROPPED),
            new_flows: self.metrics.get(m::NEW_FLOWS),
            fallback_forwards: self.metrics.get(m::FALLBACK_FORWARDS),
            flow_closes: self.metrics.get(m::FLOW_CLOSES),
            samples: self.metrics.get(m::SAMPLES),
            oob_reports: self.metrics.get(m::OOB_REPORTS),
            table_rebuilds: self.metrics.get(m::TABLE_REBUILDS),
            no_backend_drops: self.metrics.get(m::NO_BACKEND_DROPS),
            ejections: self.metrics.get(m::EJECTIONS),
            readmissions: self.metrics.get(m::READMISSIONS),
            flows_repinned: self.metrics.get(m::FLOWS_REPINNED),
            abort_signals: self.metrics.get(m::ABORT_SIGNALS),
            gossip_merges: self.metrics.get(m::GOSSIP_MERGES),
        }
    }

    /// The metrics registry (named counters/gauges/histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The decision journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The flight-recorder dump captured at the first `no_backend` drop,
    /// if one happened while the journal was enabled.
    pub fn flight_dump(&self) -> Option<&str> {
        self.flight_dump.as_deref()
    }

    fn record_weights(&mut self, now: Time, cause: WeightCause) {
        for (b, s) in self.weight_series.iter_mut().enumerate() {
            s.push(now.as_nanos(), self.weights.get(b));
        }
        if self.journal.enabled() {
            let after = self.weights.as_slice().to_vec();
            let mut victim = None;
            let mut victim_dec = 0.0;
            let mut moved = 0.0;
            for (b, (&new_w, &old_w)) in after.iter().zip(self.weights_snapshot.iter()).enumerate()
            {
                let dec = old_w - new_w;
                if dec > 0.0 {
                    moved += dec;
                    if dec > victim_dec {
                        victim_dec = dec;
                        victim = Some(b);
                    }
                }
            }
            self.weights_snapshot.clone_from(&after);
            self.journal.push(JournalEvent::WeightUpdate {
                at: now.as_nanos(),
                cause,
                victim,
                moved,
                weights: after,
            });
        }
    }

    fn backend_mac(&self, b: usize) -> MacAddr {
        // MACs are cosmetic in the simulator (routing is by IP); derive a
        // stable per-backend address.
        MacAddr::from_id(0xb000 + b as u32)
    }

    /// Handles a datagram on the control address; returns true if consumed.
    fn try_control(&mut self, now: Time, pkt: &Packet) -> bool {
        let Some((ip, port)) = self.cfg.control_addr else {
            return false;
        };
        let Ok((hdr, udp, payload)) = netpkt::udp::parse_udp(&pkt.data) else {
            return false;
        };
        if hdr.dst != ip || udp.dst_port != port {
            return false;
        }
        if let Some((backend_id, latency_ns)) = netpkt::oob::parse_report(payload) {
            let b = backend_id as usize;
            if b < self.cfg.backends.len() {
                self.metrics.inc(m::OOB_REPORTS);
                self.estimator.record(b, latency_ns, now.as_nanos());
                if self.cfg.mode == MeasureMode::Control {
                    self.run_controller(now);
                }
            }
        }
        true // addressed to the control port: consumed either way
    }

    /// The per-packet fast path.
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.metrics.inc(m::RX);
        if self.try_control(ctx.now(), &pkt) {
            ctx.pool().recycle(pkt);
            return;
        }
        let Ok((key, flags)) = FlowKey::parse_with_flags(&pkt.data) else {
            self.metrics.inc(m::DROPPED);
            ctx.pool().recycle(pkt);
            return;
        };
        if key.dst_ip != self.cfg.vip {
            self.metrics.inc(m::DROPPED);
            ctx.pool().recycle(pkt);
            return;
        }
        // Span hop: the LB parsed a traced frame's flow (recorded even
        // for frames that die below, so drops stay attributable).
        ctx.record_hop(
            pkt.span(),
            HopKind::LbDeliver,
            pack_addr(u32::from(key.src_ip), key.src_port),
            pkt.wire_len() as u64,
        );
        if self.no_backend {
            // Every backend ejected: any forwarding choice is a dead pin.
            self.metrics.inc(m::NO_BACKEND_DROPS);
            self.metrics.inc(m::DROPPED);
            if self.flight_dump.is_none() && self.journal.enabled() {
                // Flight recorder: journal the triggering drop itself,
                // then dump the causal history leading into it — even a
                // Ring whose state-entry event has been evicted must
                // still show what fired the dump.
                self.journal.push(JournalEvent::NoBackend {
                    at: ctx.now().as_nanos(),
                });
                self.flight_dump = Some(self.journal.to_ndjson());
            }
            ctx.pool().recycle(pkt);
            return;
        }
        let now = ctx.now();
        let now_ns = now.as_nanos();
        let measuring = self.cfg.mode != MeasureMode::Off && self.cfg.inband;

        // Flow lookup / admission. Entries are retired only by the idle
        // sweep, never on FIN: the final ACK of the teardown arrives
        // *after* the client's FIN, and a stateless fallback lookup could
        // send it to a different backend if the table moved in between —
        // breaking the close handshake. (Production LBs keep conntrack
        // state past FIN for the same reason.)
        let fin_or_rst = flags.contains(TcpFlags::FIN) || flags.contains(TcpFlags::RST);
        // A SYN always starts a fresh connection: if a stale entry exists
        // under the same four-tuple (the client recycled an ephemeral
        // port before the idle sweep ran), it must not contribute its old
        // timing anchors or backend pin to the new connection.
        if flags.is_syn_only() {
            if let Some(stale) = self.flows.remove(&key) {
                // A SYN under a pin that never carried data is the client
                // retrying a handshake the backend never answered — an
                // RTO-abort signal against that backend (handshake ACKs
                // bump `packets`, so a served pin never matches).
                if stale.packets == 0 {
                    self.metrics.inc(m::ABORT_SIGNALS);
                    if let Some(h) = self.health.as_mut() {
                        h.record_abort(stale.backend);
                    }
                }
            }
        }
        let backend = if let Some(entry) = self.flows.get_mut(&key) {
            entry.last_seen = now_ns;
            entry.packets += 1;
            let backend = if self.cfg.affinity {
                entry.backend
            } else {
                // Stateless routing (ABL-PCC): every packet follows the
                // *current* table; a rebuild mid-connection moves packets
                // to a different backend and breaks the connection.
                self.table.lookup(key.stable_hash())
            };
            if measuring {
                let journal_on = self.journal.enabled();
                let pre_decisions = if journal_on {
                    self.ensembles[backend].decisions().len()
                } else {
                    0
                };
                let sample = self.ensembles[backend].on_packet(&mut entry.timing, now_ns);
                if journal_on {
                    // `on_packet` closes at most one epoch per call; any
                    // new decision happened before this packet's sample.
                    for d in self.ensembles[backend]
                        .decisions()
                        .iter()
                        .skip(pre_decisions)
                    {
                        self.journal.push(JournalEvent::EpochDecision {
                            at: d.at,
                            backend,
                            counts: d.counts.clone(),
                            chosen: d.chosen,
                            delta: d.delta,
                        });
                    }
                }
                if let Some(t_lb) = sample {
                    self.metrics.inc(m::SAMPLES);
                    self.metrics.record(m::T_LB_HIST, t_lb);
                    if journal_on {
                        self.journal.push(JournalEvent::Sample {
                            at: now_ns,
                            backend,
                            src_ip: u32::from(key.src_ip),
                            src_port: key.src_port,
                            delta: self.ensembles[backend].current_delta(),
                            t_lb,
                        });
                    }
                    if let Some(h) = &self.health {
                        if t_lb <= h.config().sample_ceiling {
                            self.live_samples[backend] += 1;
                        }
                    }
                    self.estimator.record(backend, t_lb, now_ns);
                    if self.samples.len() < self.cfg.sample_log_limit {
                        self.samples.push(LoggedSample {
                            at: now,
                            backend,
                            flow: key,
                            flow_age: now_ns.saturating_sub(entry.created),
                            flow_packets: entry.packets,
                            t_lb,
                        });
                    }
                    if self.cfg.mode == MeasureMode::Control {
                        self.run_controller(now);
                    }
                }
            }
            ctx.record_hop(
                pkt.span(),
                HopKind::LbFlowTable,
                pack_addr(u32::from(key.src_ip), key.src_port),
                backend as u64,
            );
            backend
        } else if flags.is_syn_only() {
            let backend = self.pick_backend(key.stable_hash(), now_ns);
            let timing = self.ensembles[backend].new_flow(now_ns);
            self.flows.insert(key, backend, timing, now_ns);
            self.metrics.inc(m::NEW_FLOWS);
            backend
        } else {
            // No entry and not a connection start: forward statelessly.
            self.metrics.inc(m::FALLBACK_FORWARDS);
            let backend = self.table.lookup(key.stable_hash());
            ctx.record_hop(
                pkt.span(),
                HopKind::LbPick,
                pack_addr(u32::from(key.src_ip), key.src_port),
                backend as u64,
            );
            backend
        };

        if fin_or_rst {
            self.metrics.inc(m::FLOW_CLOSES);
        }

        // DSR forwarding: L2 rewrite only; the VIP stays in the IP header.
        let fwd = pkt.with_macs_pooled(self.mac, self.backend_mac(backend), ctx.pool());
        self.metrics.inc(m::FORWARDED);
        self.fwd_per_backend[backend] += 1;
        ctx.record_hop(
            fwd.span(),
            HopKind::LbForward,
            backend as u64,
            fwd.wire_len() as u64,
        );
        ctx.send(self.backend_links[backend], fwd);
        // The consumed rx buffer feeds the next forward's pooled copy.
        ctx.pool().recycle(pkt);
    }

    /// Chooses the backend for a new connection per the routing policy.
    fn pick_backend(&self, hash: u64, now_ns: u64) -> usize {
        match self.cfg.policy {
            RoutingPolicy::WeightedMaglev => self.table.lookup(hash),
            RoutingPolicy::PowerOfTwo => {
                let n = self.cfg.backends.len();
                if n == 1 {
                    return 0;
                }
                let c1 = (hash % n as u64) as usize;
                // Second candidate from an independent hash, displaced so
                // the two always differ.
                let h2 = netpkt::flow::splitmix64(hash ^ 0x9e37_79b9_7f4a_7c15);
                let mut c2 = (h2 % n as u64) as usize;
                if c2 == c1 {
                    c2 = (c2 + 1) % n;
                }
                match (
                    self.estimator.fresh_estimate(c1, now_ns),
                    self.estimator.fresh_estimate(c2, now_ns),
                ) {
                    (Some(e1), Some(e2)) if e2 < e1 => c2,
                    (None, Some(_)) => c1, // un-measured first candidate: explore it
                    _ => c1,
                }
            }
        }
    }

    fn run_controller(&mut self, now: Time) {
        if self.cfg.policy == RoutingPolicy::PowerOfTwo {
            return; // p2c consumes estimates directly; no table to reshape
        }
        if self.no_backend {
            return; // nothing to shape until a backend is readmitted
        }
        let changed =
            self.cfg
                .controller
                .maybe_update(now.as_nanos(), &self.estimator, &mut self.weights);
        if changed {
            if self.ejected.iter().any(|&e| e) {
                // Controllers redistribute by spreading mass over *all*
                // backends, which leaks weight back onto ejected ones;
                // re-apply the mask before rebuilding.
                let _ = self.weights.apply_ejections(&self.ejected);
            }
            self.table = MaglevTable::build(self.weights.as_slice(), self.cfg.table_size);
            self.metrics.inc(m::TABLE_REBUILDS);
            self.record_weights(now, WeightCause::Controller);
        }
    }

    /// Applies one weight-gossip round (multi-LB tier): blends this LB's
    /// weights toward the element-wise mean of `peers` — each a peer LB's
    /// current weight vector — with strength `mix`, re-normalizing
    /// through the **local** ejection mask so gossip never resurrects a
    /// backend this LB has ejected. The forwarding table is rebuilt only
    /// when the merge actually moved a share.
    ///
    /// Transport is the caller's problem: the experiment driver steps the
    /// simulation clock in gossip-period increments, snapshots every LB's
    /// weights, and calls this on each LB between steps — a deterministic
    /// all-to-all gossip round with no extra packets in the trace.
    ///
    /// Returns false (and changes nothing) for non-controlling configs
    /// (baseline/observer/p2c), while every backend is ejected, or when
    /// the merge is a no-op.
    pub fn apply_gossip(&mut self, peers: &[&[f64]], mix: f64, now: Time) -> bool {
        if self.cfg.mode != MeasureMode::Control
            || self.cfg.policy != RoutingPolicy::WeightedMaglev
            || self.no_backend
        {
            return false;
        }
        let before = if self.journal.enabled() {
            self.weights.as_slice().to_vec()
        } else {
            Vec::new()
        };
        if !lbcore::gossip::merge_weights(&mut self.weights, peers, mix, &self.ejected) {
            return false;
        }
        self.table = MaglevTable::build(self.weights.as_slice(), self.cfg.table_size);
        self.metrics.inc(m::TABLE_REBUILDS);
        self.metrics.inc(m::GOSSIP_MERGES);
        if self.journal.enabled() {
            self.journal.push(JournalEvent::GossipMerge {
                at: now.as_nanos(),
                mix,
                before,
                after: self.weights.as_slice().to_vec(),
            });
        }
        self.record_weights(now, WeightCause::Gossip);
        true
    }

    /// One health epoch: feed the tracker the cumulative sample/forward
    /// counters, and when a backend's routing class changed (ejection,
    /// probation, readmission) rebuild the table and migrate pinned flows.
    fn health_epoch(&mut self, now: Time) {
        let Some(tracker) = self.health.as_mut() else {
            return;
        };
        let n = self.cfg.backends.len();
        let changed = tracker.on_epoch(now.as_nanos(), &self.live_samples, &self.fwd_per_backend);
        self.metrics.set_counter(m::EJECTIONS, tracker.ejections());
        self.metrics
            .set_counter(m::READMISSIONS, tracker.readmissions());
        if self.journal.enabled() {
            for &(b, from, to, trigger) in tracker.last_transitions() {
                self.journal.push(JournalEvent::HealthTransition {
                    at: now.as_nanos(),
                    backend: b,
                    from: from.as_str(),
                    to: to.as_str(),
                    trigger: trigger.as_str(),
                });
            }
        }
        if !changed {
            return;
        }
        self.class_scratch.clear();
        self.class_scratch
            .extend((0..n).map(|b| match tracker.state(b) {
                HealthState::Healthy | HealthState::Suspect => 0u8,
                HealthState::Probation => 1,
                HealthState::Ejected => 2,
            }));
        if self.class_scratch == self.route_class {
            return; // Healthy↔Suspect churn: no routing consequence
        }
        self.raw_scratch.clear();
        for b in 0..n {
            self.raw_scratch.push(match tracker.state(b) {
                HealthState::Ejected => 0.0,
                // Probation earns only the floor: enough traffic to elicit
                // samples, little enough to contain a still-dead backend.
                HealthState::Probation => self.cfg.weight_floor,
                // A readmission restores the neutral share; margin-based
                // controllers would otherwise leave the recovered backend
                // parked at the probation floor indefinitely.
                _ if self.route_class[b] != 0 => 1.0 / n as f64,
                _ => self.weights.get(b).max(self.cfg.weight_floor),
            });
        }
        self.ejected.clear();
        self.ejected
            .extend((0..n).map(|b| tracker.state(b) == HealthState::Ejected));
        core::mem::swap(&mut self.route_class, &mut self.class_scratch);
        if !self
            .weights
            .set_with_ejections(&self.raw_scratch, &self.ejected)
        {
            // Every backend ejected: weights untouched, table kept, the
            // fast path drops with a counter until probation reopens one.
            self.no_backend = true;
            self.metrics.set_gauge(m::NO_BACKEND_GAUGE, 1.0);
            if self.journal.enabled() {
                self.journal
                    .push(JournalEvent::NoBackend { at: now.as_nanos() });
            }
            self.record_weights(now, WeightCause::Health);
            return;
        }
        self.no_backend = false;
        self.metrics.set_gauge(m::NO_BACKEND_GAUGE, 0.0);
        self.table = MaglevTable::build(self.weights.as_slice(), self.cfg.table_size);
        self.metrics.inc(m::TABLE_REBUILDS);
        // Migrate pinned flows off ejected backends. The new backend will
        // RST mid-stream connections, forcing a fast client reconnect —
        // strictly better than silently blackholing into the dead pin.
        let now_ns = now.as_nanos();
        let table = &self.table;
        let ensembles = &mut self.ensembles;
        let journal = &mut self.journal;
        let mut moved = 0usize;
        for (b, &ejected) in self.ejected.iter().enumerate() {
            if !ejected {
                continue;
            }
            moved += self.flows.repin_backend(b, |key, entry| {
                let nb = table.lookup(key.stable_hash());
                if journal.enabled() {
                    journal.push(JournalEvent::FlowRepin {
                        at: now_ns,
                        src_ip: u32::from(key.src_ip),
                        src_port: key.src_port,
                        from: b,
                        to: nb,
                    });
                }
                entry.backend = nb;
                entry.timing = ensembles[nb].new_flow(now_ns);
            });
        }
        self.metrics.add(m::FLOWS_REPINNED, moved as u64);
        self.record_weights(now, WeightCause::Health);
    }
}

impl Node for LbNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.record_weights(ctx.now(), WeightCause::Init);
        ctx.arm_timer(self.cfg.sweep_interval, SWEEP_TOKEN);
        if let Some(h) = &self.health {
            ctx.arm_timer(Duration::from_nanos(h.config().epoch), HEALTH_TOKEN);
        }
        if let Some(iv) = self.cfg.metrics_interval {
            ctx.arm_timer(iv, METRICS_TOKEN);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _link: LinkId, pkt: Packet) {
        self.process(ctx, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        match token {
            SWEEP_TOKEN => {
                self.flows.sweep(ctx.now().as_nanos());
                ctx.arm_timer(self.cfg.sweep_interval, SWEEP_TOKEN);
            }
            HEALTH_TOKEN => {
                self.health_epoch(ctx.now());
                if let Some(h) = &self.health {
                    ctx.arm_timer(Duration::from_nanos(h.config().epoch), HEALTH_TOKEN);
                }
            }
            METRICS_TOKEN => {
                self.metrics.sample(ctx.now().as_nanos());
                if let Some(iv) = self.cfg.metrics_interval {
                    ctx.arm_timer(iv, METRICS_TOKEN);
                }
            }
            _ => debug_assert!(false, "unknown LB timer token {token:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::TcpHeader;

    const VIP: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    fn backends() -> Vec<Ipv4Addr> {
        vec![Ipv4Addr::new(10, 0, 2, 1), Ipv4Addr::new(10, 0, 2, 2)]
    }

    fn client_pkt(src_port: u16, flags: TcpFlags, seq: u32) -> Packet {
        Packet::build_tcp(
            netpkt::Addresses {
                src_mac: MacAddr::from_id(1),
                dst_mac: MacAddr::from_id(2),
                src_ip: CLIENT,
                dst_ip: VIP,
            },
            &TcpHeader {
                src_port,
                dst_port: 11211,
                seq,
                ack: 0,
                flags,
                window: 8192,
            },
            b"",
            64,
            0,
        )
    }

    /// A sink that remembers delivered packets.
    struct Sink {
        got: Vec<Packet>,
    }
    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _l: LinkId, p: Packet) {
            self.got.push(p);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerToken) {}
    }

    /// An injector that sends a scripted list of (time, packet). Each
    /// entry is `take`n when its timer fires — a timer token fires exactly
    /// once, so no per-send clone of the packet is needed.
    struct Injector {
        link: LinkId,
        script: Vec<(Duration, Option<Packet>)>,
    }
    impl Node for Injector {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, (after, _)) in self.script.iter().enumerate() {
                ctx.arm_timer(*after, TimerToken(i as u64));
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _l: LinkId, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: TimerToken) {
            if let Some(pkt) = self.script[t.0 as usize].1.take() {
                ctx.send(self.link, pkt);
            }
        }
    }

    /// Builds injector → LB → two sinks (one link per backend).
    /// Returns (sim, lb, [sink0, sink1]).
    fn rig(
        cfg: LbConfig,
        script: Vec<(Duration, Packet)>,
    ) -> (netsim::Simulation, netsim::NodeId, [netsim::NodeId; 2]) {
        let mut sim = netsim::Simulation::new();
        let inj = sim.reserve_node("client");
        let lb = sim.reserve_node("lb");
        let sink0 = sim.add_node("sink0", Box::new(Sink { got: Vec::new() }));
        let sink1 = sim.add_node("sink1", Box::new(Sink { got: Vec::new() }));
        let l_in = sim.add_link(inj, lb, netsim::LinkConfig::default());
        let l0 = sim.add_link(lb, sink0, netsim::LinkConfig::default());
        let l1 = sim.add_link(lb, sink1, netsim::LinkConfig::default());
        sim.install_node(
            inj,
            Box::new(Injector {
                link: l_in,
                script: script.into_iter().map(|(d, p)| (d, Some(p))).collect(),
            }),
        );
        sim.install_node(
            lb,
            Box::new(LbNode::new(cfg, MacAddr::from_id(9), vec![l0, l1])),
        );
        (sim, lb, [sink0, sink1])
    }

    fn delivered(sim: &netsim::Simulation, sinks: [netsim::NodeId; 2]) -> Vec<(usize, Packet)> {
        let mut out = Vec::new();
        for (i, s) in sinks.into_iter().enumerate() {
            for p in &sim.node_ref::<Sink>(s).unwrap().got {
                out.push((i, p.clone()));
            }
        }
        out
    }

    #[test]
    fn syn_admits_flow_and_forwards_with_vip_intact() {
        let script = vec![
            (
                Duration::from_micros(10),
                client_pkt(4000, TcpFlags::SYN, 1),
            ),
            (
                Duration::from_micros(50),
                client_pkt(4000, TcpFlags::ACK, 2),
            ),
        ];
        let (mut sim, lb, sinks) = rig(LbConfig::baseline(VIP, backends()), script);
        sim.run_for(Duration::from_millis(10));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        assert_eq!(lb_node.stats().new_flows, 1);
        assert_eq!(lb_node.stats().forwarded, 2);
        let got = delivered(&sim, sinks);
        assert_eq!(got.len(), 2);
        for (_, p) in &got {
            let v = p.view().expect("forwarded packet must still verify");
            assert_eq!(v.ip.dst, VIP, "DSR keeps the VIP in the IP header");
            assert_eq!(v.ip.src, CLIENT, "source preserved for DSR");
            assert_eq!(v.eth.src, MacAddr::from_id(9), "LB MAC as L2 source");
        }
    }

    #[test]
    fn same_flow_sticks_to_one_backend() {
        let mut script = vec![(
            Duration::from_micros(10),
            client_pkt(4000, TcpFlags::SYN, 1),
        )];
        for i in 0..20u64 {
            script.push((
                Duration::from_micros(100 + i * 10),
                client_pkt(4000, TcpFlags::ACK | TcpFlags::PSH, 2 + i as u32),
            ));
        }
        let (mut sim, _lb, sinks) = rig(LbConfig::baseline(VIP, backends()), script);
        sim.run_for(Duration::from_millis(10));
        let got = delivered(&sim, sinks);
        let used: std::collections::HashSet<usize> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(used.len(), 1, "flow moved between backends");
        assert_eq!(got.len(), 21);
    }

    #[test]
    fn different_flows_spread_over_backends() {
        let mut script = Vec::new();
        for port in 0..64u16 {
            script.push((
                Duration::from_micros(10 + port as u64),
                client_pkt(4000 + port, TcpFlags::SYN, 1),
            ));
        }
        let (mut sim, lb, sinks) = rig(LbConfig::baseline(VIP, backends()), script);
        sim.run_for(Duration::from_millis(10));
        assert_eq!(sim.node_ref::<LbNode>(lb).unwrap().stats().new_flows, 64);
        let got = delivered(&sim, sinks);
        let mut counts = [0usize; 2];
        for (i, _) in &got {
            counts[*i] += 1;
        }
        assert!(counts[0] > 16 && counts[1] > 16, "imbalanced: {counts:?}");
    }

    #[test]
    fn fin_keeps_entry_until_idle_sweep() {
        // Entries are retired by the idle sweep, not by FIN: the post-FIN
        // straggler (the teardown's final ACK) must still hit the pinned
        // entry so it reaches the same backend.
        let script = vec![
            (
                Duration::from_micros(10),
                client_pkt(4000, TcpFlags::SYN, 1),
            ),
            (
                Duration::from_micros(50),
                client_pkt(4000, TcpFlags::FIN | TcpFlags::ACK, 2),
            ),
            (
                Duration::from_micros(90),
                client_pkt(4000, TcpFlags::ACK, 3),
            ),
        ];
        let mut cfg = LbConfig::baseline(VIP, backends());
        cfg.flow_idle_timeout = Duration::from_millis(5);
        cfg.sweep_interval = Duration::from_millis(2);
        let (mut sim, lb, _sinks) = rig(cfg, script);
        sim.run_for(Duration::from_millis(1));
        {
            let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
            assert_eq!(lb_node.stats().flow_closes, 1, "FIN observed");
            assert_eq!(
                lb_node.stats().fallback_forwards,
                0,
                "straggler used the entry"
            );
            assert_eq!(lb_node.flow_count(), 1, "entry survives the FIN");
            assert_eq!(lb_node.stats().forwarded, 3);
        }
        // After idling past the timeout, the sweep reclaims it.
        sim.run_for(Duration::from_millis(20));
        assert_eq!(sim.node_ref::<LbNode>(lb).unwrap().flow_count(), 0);
    }

    #[test]
    fn non_vip_traffic_dropped() {
        let stray = Packet::build_tcp(
            netpkt::Addresses {
                src_mac: MacAddr::from_id(1),
                dst_mac: MacAddr::from_id(2),
                src_ip: CLIENT,
                dst_ip: Ipv4Addr::new(8, 8, 8, 8),
            },
            &TcpHeader {
                src_port: 1,
                dst_port: 2,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 1,
            },
            b"",
            64,
            0,
        );
        let script = vec![(Duration::from_micros(10), stray)];
        let (mut sim, lb, sinks) = rig(LbConfig::baseline(VIP, backends()), script);
        sim.run_for(Duration::from_millis(10));
        assert_eq!(sim.node_ref::<LbNode>(lb).unwrap().stats().dropped, 1);
        assert!(delivered(&sim, sinks).is_empty());
    }

    #[test]
    fn syn_flood_bounds_flow_table_and_keeps_forwarding() {
        // 5000 spoofed SYNs from distinct ports against a 256-entry table:
        // memory stays bounded, every packet still forwards, and a real
        // flow admitted afterwards works normally.
        let mut script: Vec<(Duration, Packet)> = (0..5000u32)
            .map(|i| {
                (
                    Duration::from_nanos(1_000 + i as u64 * 200),
                    client_pkt(10_000 + (i % 50_000) as u16, TcpFlags::SYN, 1),
                )
            })
            .collect();
        script.push((
            Duration::from_millis(5),
            client_pkt(9_000, TcpFlags::SYN, 1),
        ));
        script.push((
            Duration::from_millis(6),
            client_pkt(9_000, TcpFlags::ACK | TcpFlags::PSH, 2),
        ));
        let mut cfg = LbConfig::baseline(VIP, backends());
        cfg.flow_table_capacity = 256;
        let (mut sim, lb, sinks) = rig(cfg, script);
        sim.run_for(Duration::from_millis(20));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        assert!(
            lb_node.flow_count() <= 256,
            "table grew to {}",
            lb_node.flow_count()
        );
        assert_eq!(
            lb_node.stats().forwarded,
            5002,
            "flood packets must still forward"
        );
        // The real flow's data packet followed its SYN to the same place.
        assert!(delivered(&sim, sinks).len() >= 5002);
    }

    #[test]
    fn power_of_two_prefers_fresher_faster_backend() {
        // Build a standalone node (links are never used by pick_backend).
        let mut lb = LbNode::new(
            {
                let mut c = LbConfig::latency_aware(
                    VIP,
                    backends(),
                    Box::new(lbcore::AlphaShift::damped()),
                );
                c.policy = RoutingPolicy::PowerOfTwo;
                c
            },
            MacAddr::from_id(9),
            vec![netsim::LinkId(0), netsim::LinkId(1)],
        );
        // Without estimates, picks are hash-spread over both backends.
        let mut seen = [0usize; 2];
        for h in 0..200u64 {
            seen[lb.pick_backend(netpkt::flow::splitmix64(h), 0)] += 1;
        }
        assert!(
            seen[0] > 50 && seen[1] > 50,
            "unbalanced without estimates: {seen:?}"
        );

        // Backend 0 measured much slower: every pick goes to backend 1.
        for i in 0..20 {
            lb.estimator.record(0, 5_000_000, i);
            lb.estimator.record(1, 200_000, i);
        }
        for h in 0..200u64 {
            assert_eq!(lb.pick_backend(netpkt::flow::splitmix64(h), 20), 1);
        }
    }

    #[test]
    fn affinity_off_follows_current_table() {
        // With affinity disabled and a heavily skewed table, even packets
        // of an established flow land per the table, not the pin.
        let mut cfg = LbConfig::baseline(VIP, backends());
        cfg.affinity = false;
        let mut script = vec![(
            Duration::from_micros(10),
            client_pkt(4000, TcpFlags::SYN, 1),
        )];
        for i in 0..10u64 {
            script.push((
                Duration::from_micros(100 + i * 10),
                client_pkt(4000, TcpFlags::ACK | TcpFlags::PSH, 2 + i as u32),
            ));
        }
        let (mut sim, lb, sinks) = rig(cfg, script);
        // Skew the table completely toward backend 1 after admission.
        sim.run_for(Duration::from_micros(50));
        {
            let node = sim.node_mut::<LbNode>(lb).unwrap();
            node.weights.set(&[0.0, 1.0]);
            node.table = MaglevTable::build(node.weights.as_slice(), node.cfg.table_size);
        }
        sim.run_for(Duration::from_millis(10));
        let got = delivered(&sim, sinks);
        // The SYN went wherever the original table said; all post-skew
        // packets went to backend 1.
        let after_skew: Vec<usize> = got.iter().skip(1).map(|&(i, _)| i).collect();
        assert!(
            after_skew.iter().all(|&i| i == 1),
            "stateless routing ignored the table"
        );
    }

    #[test]
    fn journal_records_samples_and_decisions() {
        // Same batched workload as observe_mode_measures_batched_flow,
        // with the journal on: every stat-counted sample must have a
        // journal event, epoch decisions must appear with their counts,
        // and the first event must be the init weight record.
        let mut script = vec![(Duration::from_micros(1), client_pkt(4000, TcpFlags::SYN, 0))];
        let mut t = Duration::from_millis(1);
        for batch in 0..200u64 {
            for i in 0..4u64 {
                script.push((
                    t + Duration::from_micros(i * 20),
                    client_pkt(
                        4000,
                        TcpFlags::ACK | TcpFlags::PSH,
                        batch as u32 * 4 + i as u32,
                    ),
                ));
            }
            t += Duration::from_millis(1);
        }
        let mut cfg = LbConfig::observer(VIP, backends());
        cfg.journal = JournalMode::Full(1 << 16);
        let (mut sim, lb, _sinks) = rig(cfg, script);
        sim.run_for(Duration::from_millis(500));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        let events: Vec<&JournalEvent> = lb_node.journal().events().collect();
        assert!(matches!(
            events[0],
            JournalEvent::WeightUpdate {
                cause: WeightCause::Init,
                ..
            }
        ));
        let samples = events
            .iter()
            .filter(|e| matches!(e, JournalEvent::Sample { .. }))
            .count() as u64;
        assert_eq!(samples, lb_node.stats().samples);
        assert!(samples > 50, "samples journaled: {samples}");
        let decisions: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                JournalEvent::EpochDecision { counts, .. } => Some(counts),
                _ => None,
            })
            .collect();
        assert!(!decisions.is_empty(), "no epoch decisions journaled");
        assert!(decisions.iter().all(|c| c.iter().sum::<u64>() > 0));
        // The NDJSON export round-trips.
        let parsed = telemetry::journal::parse_ndjson(&lb_node.journal().to_ndjson()).unwrap();
        assert_eq!(parsed.len(), events.len());
    }

    #[test]
    fn flight_recorder_dumps_on_no_backend_drop() {
        let mut cfg = LbConfig::baseline(VIP, backends());
        cfg.journal = JournalMode::Ring(8);
        let script = vec![
            (
                Duration::from_micros(10),
                client_pkt(4000, TcpFlags::SYN, 1),
            ),
            (Duration::from_millis(5), client_pkt(4000, TcpFlags::ACK, 2)),
        ];
        let (mut sim, lb, _sinks) = rig(cfg, script);
        sim.run_for(Duration::from_millis(2));
        assert!(sim.node_ref::<LbNode>(lb).unwrap().flight_dump().is_none());
        // Force the all-ejected state; the next packet must drop and
        // capture the ring contents as the flight dump.
        sim.node_mut::<LbNode>(lb).unwrap().no_backend = true;
        sim.run_for(Duration::from_millis(10));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        assert_eq!(lb_node.stats().no_backend_drops, 1);
        let dump = lb_node.flight_dump().expect("flight dump captured");
        let parsed = telemetry::journal::parse_ndjson(dump).unwrap();
        assert!(!parsed.is_empty(), "dump carries the causal history");
        // The dump's final event is the drop that fired it — the
        // trigger is journaled before the ring is snapshotted, so it
        // can never be evicted out of its own dump.
        let last = parsed.last().unwrap();
        assert_eq!(last.kind(), "no_backend", "dump ends with the trigger");
        assert!(
            parsed.iter().all(|e| e.at() <= last.at()),
            "trigger is the newest event in the dump"
        );
    }

    #[test]
    fn flight_dump_trigger_survives_a_tiny_ring() {
        // Ring(1) is the worst case: every prior event has been evicted
        // by the time the dump fires. The dump must still contain the
        // triggering no_backend event itself.
        let mut cfg = LbConfig::baseline(VIP, backends());
        cfg.journal = JournalMode::Ring(1);
        let script = vec![
            (
                Duration::from_micros(10),
                client_pkt(4000, TcpFlags::SYN, 1),
            ),
            (Duration::from_millis(5), client_pkt(4000, TcpFlags::ACK, 2)),
        ];
        let (mut sim, lb, _sinks) = rig(cfg, script);
        sim.run_for(Duration::from_millis(2));
        sim.node_mut::<LbNode>(lb).unwrap().no_backend = true;
        sim.run_for(Duration::from_millis(10));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        let dump = lb_node.flight_dump().expect("flight dump captured");
        let parsed = telemetry::journal::parse_ndjson(dump).unwrap();
        assert_eq!(parsed.len(), 1, "Ring(1) retains exactly the trigger");
        assert_eq!(parsed[0].kind(), "no_backend");
        // A later drop must not overwrite the first capture.
        let first_at = parsed[0].at();
        sim.run_for(Duration::from_millis(5));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        let again = telemetry::journal::parse_ndjson(lb_node.flight_dump().unwrap()).unwrap();
        assert_eq!(again[0].at(), first_at, "first dump is retained");
    }

    #[test]
    fn metrics_timer_samples_counters() {
        let mut script = Vec::new();
        for i in 0..40u64 {
            script.push((
                Duration::from_micros(100 + i * 200),
                client_pkt(4000 + i as u16, TcpFlags::SYN, 1),
            ));
        }
        let mut cfg = LbConfig::baseline(VIP, backends());
        cfg.metrics_interval = Some(Duration::from_millis(2));
        let (mut sim, lb, _sinks) = rig(cfg, script);
        sim.run_for(Duration::from_millis(11));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        let series = lb_node
            .metrics()
            .counter_series(super::m::RX)
            .expect("sampling enabled");
        let pts = series.count_series();
        assert!(pts.len() >= 5, "timer sampled {} bins", pts.len());
        // The final sampled cumulative value matches the live counter.
        let merged = series.merged();
        assert_eq!(merged.max(), lb_node.stats().rx);
    }

    #[test]
    fn observe_mode_measures_batched_flow() {
        // One flow sending batches every 1 ms: the ensemble must produce
        // samples near 1 ms and never change the weights.
        let mut script = vec![(Duration::from_micros(1), client_pkt(4000, TcpFlags::SYN, 0))];
        let mut t = Duration::from_millis(1);
        for batch in 0..400u64 {
            for i in 0..4u64 {
                script.push((
                    t + Duration::from_micros(i * 20),
                    client_pkt(
                        4000,
                        TcpFlags::ACK | TcpFlags::PSH,
                        batch as u32 * 4 + i as u32,
                    ),
                ));
            }
            t += Duration::from_millis(1);
        }
        let (mut sim, lb, _sink) = rig(LbConfig::observer(VIP, backends()), script);
        sim.run_for(Duration::from_secs(1));
        let lb_node = sim.node_ref::<LbNode>(lb).unwrap();
        assert!(
            lb_node.stats().samples > 100,
            "samples: {}",
            lb_node.stats().samples
        );
        // After the ensemble settles, samples should be ~1 ms.
        let late: Vec<u64> = lb_node
            .samples()
            .iter()
            .filter(|s| s.at.as_nanos() > 200_000_000)
            .map(|s| s.t_lb)
            .collect();
        let near = late
            .iter()
            .filter(|&&s| (900_000..1_100_000).contains(&s))
            .count();
        assert!(
            near as f64 > 0.9 * late.len() as f64,
            "only {near}/{} samples near 1 ms",
            late.len()
        );
        assert_eq!(
            lb_node.stats().table_rebuilds,
            0,
            "observe mode must not adapt"
        );
    }
}
