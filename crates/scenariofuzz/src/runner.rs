//! Scenario execution and the global invariant suite.
//!
//! A scenario is materialized onto the fig3 topology (N latency-aware
//! LBs behind the router's rendezvous ECMP, scripted faults and delay
//! injections armed, journals on), run to its horizon with the stepped
//! gossip driver, and then every invariant the repo's suites check
//! separately is checked here in one place:
//!
//! * `shard_isolation` — every in-band sample an LB learned from belongs
//!   to a flow `netsim::ecmp::pick` assigns to that LB's arm.
//! * `ejected_quiet` — zero forwarded packets to a backend while its
//!   journal says it was ejected (strictly inside the window: deliveries
//!   already scheduled at the transition instant are legal).
//! * `weights_normalized` — every journaled weight vector sums to 1;
//!   the end-state vector respects the survivor floor and keeps ejected
//!   backends at bitwise 0.0 (unless *all* backends are ejected, in
//!   which case the stale pre-ejection vector is intentionally kept).
//! * `journal_replay` — replaying the journal's weight_update events
//!   reconstructs each backend's recorded weight series bit-for-bit.
//! * `spans_consistent` — the causal span tracer agrees with the other
//!   observers: every journaled `T_LB` sample's flow has a matching span
//!   tree issued at or before the sample fired, and the multiset of
//!   span-derived `(completed_at, T_client, is_get)` triples is bitwise
//!   the client recorders' raw samples.
//! * `determinism` — running the same scenario twice produces the same
//!   packet-trace hash, journals, span digest, and counters.
//! * `harness` — the run stayed inside its observability budget (no
//!   trace truncation, no journal overflow, no span-log drops); a
//!   violation here means the other checks were blind, so the minimizer
//!   shrinks the scenario.

use std::net::Ipv4Addr;

use experiments::topology::{KvCluster, KvClusterConfig, VIP};
use lb_dataplane::{LbConfig, LbNode};
use lbcore::{AlphaShift, HealthConfig};
use netsim::fault::{FaultSchedule, ImpairmentConfig};
use netsim::trace::Trace;
use netsim::{Duration, Time, TraceKind};
use telemetry::span::{assemble, critical_path, sort_records, CriticalPath};
use telemetry::{JournalEvent, JournalMode, SpanMode};
use workload::MemtierConfig;

use crate::scenario::{FaultSpec, Scenario};

/// Trace capacity for fuzz runs: ~4M events covers a 4-LB scenario at
/// the longest generated horizon with margin; overflow is a `harness`
/// violation, not silent.
const TRACE_CAPACITY: usize = 1 << 22;
/// Journal capacity per LB (events).
const JOURNAL_CAPACITY: usize = 1 << 20;
/// Span-log capacity (hop records, tier-wide): fuzz scenarios complete
/// at most a few hundred thousand requests, each a dozen-odd hops;
/// drops are a `harness` violation, not silent.
const SPAN_CAPACITY: usize = 1 << 22;

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (`shard_isolation`, `ejected_quiet`,
    /// `weights_normalized`, `journal_replay`, `spans_consistent`,
    /// `determinism`, `harness`).
    pub invariant: &'static str,
    /// Human-readable specifics (deterministic: derived from sim state).
    pub detail: String,
}

/// Deterministic digest of one run, compared across the two runs of a
/// seed for the `determinism` invariant and surfaced in the campaign
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// FNV-1a fold of the packet trace (same formula as the pinned
    /// determinism suite).
    pub trace_hash: u64,
    /// Trace events retained.
    pub trace_events: u64,
    /// Packets forwarded, summed over the tier.
    pub forwarded: u64,
    /// In-band `T_LB` samples, summed over the tier.
    pub samples: u64,
    /// Health ejections, summed over the tier.
    pub ejections: u64,
    /// Probation readmissions, summed over the tier.
    pub readmissions: u64,
    /// Gossip merges that moved weights, summed over the tier.
    pub gossip_merges: u64,
    /// Packets dropped in the all-ejected state, summed over the tier.
    pub no_backend_drops: u64,
    /// Journal events retained, summed over the tier.
    pub journal_events: u64,
    /// FNV-1a hash of each LB's journal NDJSON bytes.
    pub journal_hashes: Vec<u64>,
    /// Span hop records retained.
    pub span_records: u64,
    /// FNV-1a digest of the sorted span records (see
    /// [`telemetry::span::digest`]).
    pub span_digest: u64,
}

/// The outcome of fuzzing one scenario: the digest of the first run and
/// every violation found across both runs.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// First-run digest.
    pub summary: RunSummary,
    /// All violations, in check order (deduplicated per invariant at
    /// most a handful of details each).
    pub violations: Vec<Violation>,
}

impl Outcome {
    /// Stable names of the violated invariants, deduplicated, in check
    /// order.
    pub fn violated_invariants(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for v in &self.violations {
            if !names.contains(&v.invariant) {
                names.push(v.invariant);
            }
        }
        names
    }
}

/// Per-invariant cap on recorded violation details: one bad run can
/// violate an invariant thousands of times; the first few localize it.
const MAX_DETAILS_PER_INVARIANT: usize = 4;

fn ms(v: u32) -> Duration {
    Duration::from_millis(u64::from(v))
}

/// Builds the cluster a scenario describes (trace and faults armed, not
/// yet run).
pub fn build_cluster(sc: &Scenario) -> KvCluster {
    let probation_ns = u64::from(sc.probation_ms) * 1_000_000;
    let factory = move || -> Box<dyn FnOnce(Vec<Ipv4Addr>) -> LbConfig> {
        Box::new(move |backends| {
            let mut cfg = LbConfig::latency_aware(VIP, backends, Box::new(AlphaShift::damped()));
            cfg.health = Some(HealthConfig {
                probation_after: probation_ns,
                ..HealthConfig::default()
            });
            cfg.journal = JournalMode::Full(JOURNAL_CAPACITY);
            cfg
        })
    };
    let mut cfg = KvClusterConfig::fig3_defaults(factory());
    cfg.clients = vec![MemtierConfig {
        connections: sc.connections as usize,
        pipeline: sc.pipeline as usize,
        get_ratio: f64::from(sc.get_ratio_pct) / 100.0,
        set_value_len: sc.value_len,
        requests_per_conn: u64::from(sc.requests_per_conn),
        ..MemtierConfig::default()
    }];
    cfg.backends = sc
        .backends
        .iter()
        .enumerate()
        .map(|(j, b)| backend::KvServerConfig {
            service: backend::ServiceDist::LogNormal {
                median: u64::from(b.median_us) * 1_000,
                sigma: f64::from(b.sigma_pct) / 100.0,
            },
            workers: b.workers as usize,
            seed: j as u64,
            ..backend::KvServerConfig::default()
        })
        .collect();
    for _ in 1..sc.lbs {
        cfg.extra_lbs.push(factory());
    }
    cfg.seed = sc.seed;
    let mut cluster = KvCluster::build(cfg);
    cluster.sim.enable_trace(TRACE_CAPACITY);
    cluster.sim.enable_spans(SpanMode::Full(SPAN_CAPACITY));

    let mut faults = FaultSchedule::new();
    for f in &sc.faults {
        match *f {
            FaultSpec::Crash {
                backend,
                down_ms,
                up_ms,
            } => {
                faults.crash_window(
                    cluster.backends[backend as usize],
                    Time::ZERO + ms(down_ms),
                    Time::ZERO + ms(up_ms),
                );
            }
            FaultSpec::Flap {
                lb,
                backend,
                down_ms,
                up_ms,
            } => {
                faults.link_flap(
                    cluster.fwd_links[lb as usize][backend as usize],
                    Time::ZERO + ms(down_ms),
                    Time::ZERO + ms(up_ms),
                );
            }
            FaultSpec::Impair {
                lb,
                backend,
                from_ms,
                until_ms,
                corrupt_pm,
                duplicate_pm,
                reorder_pm,
                window_us,
                seed,
            } => {
                faults.impair_window(
                    cluster.fwd_links[lb as usize][backend as usize],
                    cluster.lbs[lb as usize],
                    ImpairmentConfig {
                        corrupt_p: f64::from(corrupt_pm) / 1000.0,
                        duplicate_p: f64::from(duplicate_pm) / 1000.0,
                        reorder_p: f64::from(reorder_pm) / 1000.0,
                        reorder_window: Duration::from_micros(u64::from(window_us)),
                        seed,
                    },
                    Time::ZERO + ms(from_ms),
                    Time::ZERO + ms(until_ms),
                );
            }
        }
    }
    faults.apply(&mut cluster.sim);
    for inj in &sc.injections {
        cluster.inject_backend_delay_all_lbs(
            inj.backend as usize,
            Time::ZERO + ms(inj.at_ms),
            Duration::from_micros(u64::from(inj.extra_us)),
        );
    }
    cluster
}

/// Runs a built cluster to the scenario horizon. With gossip enabled the
/// clock advances in period steps with an all-to-all round between steps
/// (same driver discipline as the multilb experiment: gossip adds no
/// packets, so stepping never perturbs the trace).
pub fn run_cluster(cluster: &mut KvCluster, sc: &Scenario) {
    let end = Time::ZERO + ms(sc.duration_ms);
    if sc.lbs > 1 && sc.gossip_period_ms > 0 {
        let period = ms(sc.gossip_period_ms);
        let mix = f64::from(sc.gossip_mix_pct) / 100.0;
        let mut next = Time::ZERO + period;
        while next < end {
            cluster.sim.run_until(next);
            gossip_round(cluster, mix);
            next = next + period;
        }
        cluster.sim.run_until(end);
    } else {
        cluster.sim.run_until(end);
    }
}

/// One all-to-all gossip round against pre-round snapshots (symmetric
/// and order-independent, mirroring `experiments::multilb`).
fn gossip_round(cluster: &mut KvCluster, mix: f64) {
    let now = cluster.sim.now();
    let snapshots: Vec<Vec<f64>> = cluster
        .lbs
        .iter()
        .map(|&id| {
            cluster
                .sim
                .node_ref::<LbNode>(id)
                .map(|n| n.weights().as_slice().to_vec())
                .unwrap_or_default()
        })
        .collect();
    for (i, &id) in cluster.lbs.iter().enumerate() {
        let peers: Vec<&[f64]> = snapshots
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, v)| v.as_slice())
            .collect();
        if let Some(node) = cluster.sim.node_mut::<LbNode>(id) {
            node.apply_gossip(&peers, mix, now);
        }
    }
}

/// The determinism suite's trace fold: FNV-1a over every event's
/// canonical line. Must stay formula-identical to `tests/determinism.rs`
/// so a hash mismatch there and here mean the same thing.
pub fn fold_trace(trace: &Trace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.events() {
        let line = format!(
            "{};{:?};{:?};{:?};{:?};{}",
            e.at.as_nanos(),
            e.node,
            e.kind,
            e.link,
            e.flow,
            e.wire_len
        );
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Collects violations from a finished cluster, plus the run digest.
fn digest_and_check(cluster: &KvCluster, sc: &Scenario) -> (RunSummary, Vec<Violation>) {
    let mut violations: Vec<Violation> = Vec::new();
    let push = |violations: &mut Vec<Violation>, invariant: &'static str, detail: String| {
        let seen = violations
            .iter()
            .filter(|v| v.invariant == invariant)
            .count();
        if seen < MAX_DETAILS_PER_INVARIANT {
            violations.push(Violation { invariant, detail });
        }
    };

    let n_lbs = sc.lbs as usize;
    let nodes: Vec<&LbNode> = (0..n_lbs).map(|i| cluster.lb_node_i(i)).collect();
    let trace = cluster.sim.trace();

    // -- harness: the observations below are only trustworthy if nothing
    // was dropped on the observability side.
    if trace.truncated > 0 {
        push(
            &mut violations,
            "harness",
            format!("packet trace truncated ({} events lost)", trace.truncated),
        );
    }
    for (i, node) in nodes.iter().enumerate() {
        let ovf = node.journal().overflow();
        if ovf > 0 {
            push(
                &mut violations,
                "harness",
                format!("LB {i} journal overflowed ({ovf} events lost)"),
            );
        }
    }
    if cluster.sim.spans().dropped() > 0 {
        push(
            &mut violations,
            "harness",
            format!(
                "span log dropped {} hop records",
                cluster.sim.spans().dropped()
            ),
        );
    }

    // -- shard_isolation: every sample's flow hashes to this LB's arm.
    let arms = &cluster.lb_arms;
    for (i, node) in nodes.iter().enumerate() {
        for s in node.samples() {
            let owner =
                netsim::ecmp::pick(s.flow.stable_hash(), arms).expect("non-empty ECMP arm set");
            if owner != arms[i] {
                push(
                    &mut violations,
                    "shard_isolation",
                    format!(
                        "LB {i} learned from flow {:?} owned by another shard (t={})",
                        s.flow,
                        s.at.as_nanos()
                    ),
                );
            }
        }
    }

    // -- ejected_quiet: no Send on LB i's forwarding link to backend b
    // strictly inside any of b's ejection windows on LB i's journal.
    for (i, node) in nodes.iter().enumerate() {
        let windows = ejection_windows(node, sc.backends.len());
        if windows.iter().all(|w| w.is_empty()) {
            continue;
        }
        let lb_id = cluster.lbs[i];
        for e in trace.events() {
            if e.node != lb_id || e.kind != TraceKind::Send {
                continue;
            }
            for (b, wins) in windows.iter().enumerate() {
                if e.link != cluster.fwd_links[i][b] {
                    continue;
                }
                let at = e.at.as_nanos();
                if wins.iter().any(|&(lo, hi)| at > lo && at < hi) {
                    push(
                        &mut violations,
                        "ejected_quiet",
                        format!("LB {i} sent to ejected backend {b} at t={at}"),
                    );
                }
            }
        }
    }

    // -- weights_normalized: every journaled vector sums to 1; the end
    // state respects the floor and keeps ejected backends at exactly 0.
    for (i, node) in nodes.iter().enumerate() {
        for ev in node.journal().events() {
            if let JournalEvent::WeightUpdate { at, weights, .. } = ev {
                let sum: f64 = weights.iter().sum();
                if (sum - 1.0).abs() > 1e-6 {
                    push(
                        &mut violations,
                        "weights_normalized",
                        format!("LB {i} journaled weights summing to {sum} at t={at}"),
                    );
                }
            }
        }
        let w = node.weights();
        let sum: f64 = w.as_slice().iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            push(
                &mut violations,
                "weights_normalized",
                format!("LB {i} final weights sum to {sum}"),
            );
        }
        if let Some(health) = node.health() {
            let mask = health.ejected_mask();
            // All-ejected: the node keeps the stale pre-ejection vector
            // on purpose (no_backend drop mode); only the sum applies.
            if !mask.iter().all(|&e| e) {
                for (b, &ejected) in mask.iter().enumerate() {
                    let wb = w.get(b);
                    if ejected {
                        if wb.to_bits() != 0.0f64.to_bits() {
                            push(
                                &mut violations,
                                "weights_normalized",
                                format!("LB {i} ejected backend {b} holds weight {wb}"),
                            );
                        }
                    } else if wb < w.floor() - 1e-9 {
                        push(
                            &mut violations,
                            "weights_normalized",
                            format!("LB {i} backend {b} below floor: {wb} < {}", w.floor()),
                        );
                    }
                }
            }
        }
    }

    // -- journal_replay: weight_update events reconstruct each recorded
    // weight series bit-for-bit.
    for (i, node) in nodes.iter().enumerate() {
        let n = sc.backends.len();
        let mut replayed: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for ev in node.journal().events() {
            if let JournalEvent::WeightUpdate { at, weights, .. } = ev {
                for (b, w) in weights.iter().enumerate() {
                    replayed[b].push((*at, w.to_bits()));
                }
            }
        }
        for (b, replay) in replayed.iter().enumerate() {
            let recorded: Vec<(u64, u64)> = node
                .weight_series(b)
                .points()
                .iter()
                .map(|&(t, w)| (t, w.to_bits()))
                .collect();
            if *replay != recorded {
                push(
                    &mut violations,
                    "journal_replay",
                    format!(
                        "LB {i} backend {b}: journal replays {} weight points, \
                         series recorded {} (or values differ)",
                        replay.len(),
                        recorded.len()
                    ),
                );
            }
        }
    }

    // -- spans_consistent: the span tracer agrees with both independent
    // observers of the same run.
    let mut span_records = cluster.sim.spans().records().to_vec();
    sort_records(&mut span_records);
    let span_digest = telemetry::span::digest(&span_records);
    let paths: Vec<CriticalPath> = assemble(&span_records)
        .iter()
        .filter_map(critical_path)
        .collect();
    // (a) Every journaled T_LB sample's flow has a matching span tree:
    // a request was issued (and traced) on that flow at or before the
    // sample fired. Not "completed" — the earliest samples are anchored
    // on the handshake and fire on the first request packet, before any
    // response has reached the client.
    let mut first_issue: std::collections::BTreeMap<(u32, u16), u64> =
        std::collections::BTreeMap::new();
    for span in assemble(&span_records) {
        if let Some(issue) = span.first(telemetry::span::HopKind::ClientIssue) {
            let (ip, port) = telemetry::span::unpack_addr(issue.a);
            let e = first_issue.entry((ip, port)).or_insert(issue.at);
            *e = (*e).min(issue.at);
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        for ev in node.journal().events() {
            if let JournalEvent::Sample {
                at,
                src_ip,
                src_port,
                ..
            } = ev
            {
                let matched = first_issue
                    .get(&(*src_ip, *src_port))
                    .is_some_and(|&t| t <= *at);
                if !matched {
                    push(
                        &mut violations,
                        "spans_consistent",
                        format!(
                            "LB {i} sample at t={at} for flow {src_ip:#010x}:{src_port} \
                             has no span tree issued at or before it"
                        ),
                    );
                }
            }
        }
    }
    // (b) Span-derived T_client is bitwise the client recorders' raw
    // samples: same completion instants, same latencies, same op mix.
    let mut from_spans: Vec<(u64, u64, bool)> = paths
        .iter()
        .map(|p| (p.completed_at, p.t_client, p.is_get))
        .collect();
    let mut from_recorders: Vec<(u64, u64, bool)> = (0..cluster.clients.len())
        .flat_map(|i| cluster.client_app(i).recorder.raw().iter().copied())
        .collect();
    from_spans.sort_unstable();
    from_recorders.sort_unstable();
    if from_spans != from_recorders {
        push(
            &mut violations,
            "spans_consistent",
            format!(
                "span-derived T_client multiset ({} paths) differs from the \
                 client recorders' raw samples ({})",
                from_spans.len(),
                from_recorders.len()
            ),
        );
    }

    let summary = RunSummary {
        trace_hash: fold_trace(trace),
        trace_events: trace.events().len() as u64,
        forwarded: nodes.iter().map(|n| n.stats().forwarded).sum(),
        samples: nodes.iter().map(|n| n.stats().samples).sum(),
        ejections: nodes.iter().map(|n| n.stats().ejections).sum(),
        readmissions: nodes.iter().map(|n| n.stats().readmissions).sum(),
        gossip_merges: nodes.iter().map(|n| n.stats().gossip_merges).sum(),
        no_backend_drops: nodes.iter().map(|n| n.stats().no_backend_drops).sum(),
        journal_events: nodes.iter().map(|n| n.journal().len() as u64).sum(),
        journal_hashes: nodes
            .iter()
            .map(|n| fnv1a(n.journal().to_ndjson().as_bytes()))
            .collect(),
        span_records: span_records.len() as u64,
        span_digest,
    };
    (summary, violations)
}

/// Per-backend ejection windows `(open_ns, close_ns)` from one LB's
/// journal: a window opens at a HealthTransition into `"ejected"` and
/// closes at that backend's next transition (probation probes resume
/// legitimately at the boundary), or at `u64::MAX` if never left.
fn ejection_windows(node: &LbNode, n_backends: usize) -> Vec<Vec<(u64, u64)>> {
    let mut windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_backends];
    let mut open: Vec<Option<u64>> = vec![None; n_backends];
    for ev in node.journal().events() {
        if let JournalEvent::HealthTransition {
            at, backend, to, ..
        } = ev
        {
            let b = *backend;
            if b >= n_backends {
                continue;
            }
            if let Some(lo) = open[b].take() {
                windows[b].push((lo, *at));
            }
            if *to == "ejected" {
                open[b] = Some(*at);
            }
        }
    }
    for (b, lo) in open.into_iter().enumerate() {
        if let Some(lo) = lo {
            windows[b].push((lo, u64::MAX));
        }
    }
    windows
}

/// Builds, runs, and checks a scenario once.
pub fn run_once(sc: &Scenario) -> (RunSummary, Vec<Violation>) {
    let mut cluster = build_cluster(sc);
    run_cluster(&mut cluster, sc);
    digest_and_check(&cluster, sc)
}

/// The full per-seed check: two independent runs (the `determinism`
/// invariant), merged violations, first-run digest.
pub fn check(sc: &Scenario) -> Outcome {
    let (summary_a, mut violations) = run_once(sc);
    let (summary_b, _) = run_once(sc);
    if summary_a != summary_b {
        let detail = if summary_a.trace_hash != summary_b.trace_hash {
            format!(
                "trace hash {:#018x} vs {:#018x} across two runs of the same seed",
                summary_a.trace_hash, summary_b.trace_hash
            )
        } else {
            "journals or counters differ across two runs of the same seed".to_string()
        };
        violations.push(Violation {
            invariant: "determinism",
            detail,
        });
    }
    Outcome {
        summary: summary_a,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small end-to-end smoke: a hand-written quiet scenario runs
    /// clean and its digest is reproducible. (The broad campaign lives
    /// in the root `fuzz_regressions` suite and the CLI; this pins the
    /// runner plumbing itself at unit-test cost.)
    #[test]
    fn quiet_scenario_runs_clean_and_reproducibly() {
        let sc = Scenario {
            seed: 7,
            lbs: 2,
            backends: vec![
                crate::scenario::BackendSpec {
                    median_us: 60,
                    sigma_pct: 30,
                    workers: 4,
                },
                crate::scenario::BackendSpec {
                    median_us: 80,
                    sigma_pct: 20,
                    workers: 2,
                },
            ],
            connections: 8,
            pipeline: 1,
            get_ratio_pct: 50,
            value_len: 64,
            requests_per_conn: 100,
            duration_ms: 600,
            gossip_period_ms: 50,
            gossip_mix_pct: 30,
            probation_ms: 2500,
            faults: Vec::new(),
            injections: Vec::new(),
        };
        let outcome = check(&sc);
        assert!(
            outcome.violations.is_empty(),
            "violations: {:?}",
            outcome.violations
        );
        assert!(outcome.summary.forwarded > 0);
        assert!(outcome.summary.samples > 0);
        // Note: gossip_merges may legitimately be 0 here — a merge only
        // counts when it moves weights, and short symmetric runs agree.
        assert!(outcome.summary.journal_events > 0);
        // A third run matches the digest of the first two.
        let (again, _) = run_once(&sc);
        assert_eq!(again, outcome.summary);
    }
}
