//! The campaign report: hand-rolled JSON (house style — no serde),
//! deliberately free of wall-clock timestamps so two runs of the same
//! seed range produce byte-identical files (the CLI's determinism
//! acceptance check diffs them directly).

use crate::runner::Outcome;
use crate::scenario::Scenario;

/// Schema tag of the campaign JSON.
pub const SCHEMA: &str = "scenariofuzz-v1";

/// One seed's row in the campaign.
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// The scenario it generated.
    pub scenario: Scenario,
    /// The per-seed outcome (two runs + invariant checks).
    pub outcome: Outcome,
}

/// Renders the campaign JSON for a seed range and its results.
pub fn campaign_json(from: u64, to: u64, results: &[SeedResult]) -> String {
    let failed = results
        .iter()
        .filter(|r| !r.outcome.violations.is_empty())
        .count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", json_str(SCHEMA)));
    out.push_str(&format!(
        "  \"seeds\": {{ \"from\": {from}, \"to\": {to} }},\n"
    ));
    out.push_str(&format!("  \"total\": {},\n", results.len()));
    out.push_str(&format!("  \"passed\": {},\n", results.len() - failed));
    out.push_str(&format!("  \"failed\": {failed},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&seed_json(r, "    "));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn seed_json(r: &SeedResult, indent: &str) -> String {
    let sc = &r.scenario;
    let s = &r.outcome.summary;
    let mut out = String::new();
    out.push_str(&format!("{indent}{{ \"seed\": {}", r.seed));
    out.push_str(&format!(
        ", \"lbs\": {}, \"backends\": {}, \"connections\": {}, \"duration_ms\": {}",
        sc.lbs,
        sc.backends.len(),
        sc.connections,
        sc.duration_ms
    ));
    out.push_str(&format!(
        ", \"gossip\": {}, \"faults\": {}, \"injections\": {}",
        sc.gossip_period_ms > 0,
        sc.faults.len(),
        sc.injections.len()
    ));
    out.push_str(&format!(
        ", \"trace_hash\": \"{:#018x}\", \"trace_events\": {}",
        s.trace_hash, s.trace_events
    ));
    out.push_str(&format!(
        ", \"forwarded\": {}, \"samples\": {}, \"ejections\": {}, \"readmissions\": {}",
        s.forwarded, s.samples, s.ejections, s.readmissions
    ));
    out.push_str(&format!(
        ", \"gossip_merges\": {}, \"no_backend_drops\": {}, \"journal_events\": {}",
        s.gossip_merges, s.no_backend_drops, s.journal_events
    ));
    out.push_str(&format!(
        ", \"span_records\": {}, \"span_digest\": \"{:#018x}\"",
        s.span_records, s.span_digest
    ));
    out.push_str(", \"violations\": [");
    for (i, v) in r.outcome.violations.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{ \"invariant\": {}, \"detail\": {} }}",
            json_str(v.invariant),
            json_str(&v.detail)
        ));
    }
    out.push_str("] }");
    out
}

/// Minimal JSON string escaper (same dialect as the journal writer:
/// quotes, backslashes, and control characters).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Outcome, RunSummary, Violation};

    fn fake_result(seed: u64, violations: Vec<Violation>) -> SeedResult {
        SeedResult {
            seed,
            scenario: Scenario::generate(seed),
            outcome: Outcome {
                summary: RunSummary {
                    trace_hash: 0xdead_beef,
                    trace_events: 10,
                    forwarded: 9,
                    samples: 3,
                    ejections: 0,
                    readmissions: 0,
                    gossip_merges: 0,
                    no_backend_drops: 0,
                    journal_events: 5,
                    journal_hashes: vec![1],
                    span_records: 40,
                    span_digest: 0xfeed_f00d,
                },
                violations,
            },
        }
    }

    #[test]
    fn report_counts_and_schema() {
        let results = vec![
            fake_result(0, Vec::new()),
            fake_result(
                1,
                vec![Violation {
                    invariant: "weights_normalized",
                    detail: "LB 0 weights sum to 0.5".into(),
                }],
            ),
        ];
        let json = campaign_json(0, 2, &results);
        assert!(json.contains("\"schema\": \"scenariofuzz-v1\""));
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"passed\": 1"));
        assert!(json.contains("\"failed\": 1"));
        assert!(json.contains("\"invariant\": \"weights_normalized\""));
        // Deterministic by construction: rendering twice is identical.
        assert_eq!(json, campaign_json(0, 2, &results));
    }

    #[test]
    fn escaper_handles_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
