//! Seeded scenario fuzzing over the global invariant suite.
//!
//! The repo's suites each pin one behavior on one hand-written scenario
//! (fig3 determinism, the chaos schedule, multilb conformance, DSR
//! leakage, health ejection). This crate composes them generatively: a
//! single u64 seed derives a complete scenario — topology (LB tier
//! size, backend count and service tiers), workload mix (connections,
//! pipelining, GET/SET ratio, value size, churn), controller and gossip
//! config, and a fault schedule (crashes, flaps, impairments, latency
//! injections) — which is run through the existing drivers and checked
//! against every global invariant in one place, twice per seed for
//! trace-hash determinism.
//!
//! On violation, [`minimize::minimize`] shrinks the scenario while the
//! violation reproduces and the result is committed as a regression
//! case under `tests/fuzz_regressions/` (see the `scenariofuzz` CLI in
//! the `bench` crate), which the root `fuzz_regressions` suite replays
//! forever.
//!
//! Pipeline:
//!
//! ```text
//! seed ──> Scenario::generate ──> runner::check (run ×2, invariants)
//!                                        │ violation
//!                                        v
//!                         minimize::minimize ──> tests/fuzz_regressions/*.case
//! ```
//!
//! Everything here is a pure function of the seed: no wall clock, no
//! ambient entropy (simlint rules D1/D2 apply to this crate), so a
//! campaign report is byte-identical across runs and machines.

#![deny(missing_docs)]

pub mod minimize;
pub mod report;
pub mod runner;
pub mod scenario;

pub use minimize::{minimize, minimize_with};
pub use report::{campaign_json, SeedResult, SCHEMA};
pub use runner::{check, fold_trace, run_once, Outcome, RunSummary, Violation};
pub use scenario::{BackendSpec, FaultSpec, Injection, Scenario};
