//! Automatic scenario shrinking.
//!
//! When a seed violates an invariant, the raw scenario is rarely the
//! story: most of its faults, clients, and horizon are bystanders. The
//! minimizer repeatedly tries a fixed list of simplification candidates
//! — drop a fault, drop an injection, disable gossip, halve backends,
//! halve the tier, halve clients, turn churn off, shrink the horizon —
//! keeping a candidate only when the *original* violation still
//! reproduces, and stops at a fixpoint. Every accepted candidate
//! strictly decreases a bounded integer measure of the scenario, so
//! termination is structural, not a retry budget.
//!
//! The reproduction predicate is injected, which keeps the shrink logic
//! a pure, unit-testable function; [`minimize`] wires it to the live
//! runner.

use crate::runner::check;
use crate::scenario::{FaultSpec, Scenario};

/// Floor for the shrunken horizon: long enough for the health machinery
/// (300 ms detection + probation) to act at all.
const MIN_DURATION_MS: u32 = 600;

/// Shrinks `sc` while `repro` keeps returning true, to a fixpoint.
/// `repro` is never called on a structurally invalid scenario.
pub fn minimize_with<F>(sc: &Scenario, mut repro: F) -> Scenario
where
    F: FnMut(&Scenario) -> bool,
{
    let mut current = sc.clone();
    loop {
        let mut progressed = false;
        for candidate in candidates(&current) {
            debug_assert!(candidate.validate().is_ok());
            if repro(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Minimizes a violating scenario against the live invariant suite: a
/// candidate counts as reproducing when it violates at least one of the
/// invariants the *original* scenario violated (not merely any
/// invariant — shrinking must not wander onto a different bug).
///
/// Returns `None` when `sc` does not violate anything to begin with.
pub fn minimize(sc: &Scenario) -> Option<(Scenario, Vec<&'static str>)> {
    let original = check(sc);
    let target = original.violated_invariants();
    if target.is_empty() {
        return None;
    }
    let minimized = minimize_with(sc, |candidate| {
        check(candidate)
            .violated_invariants()
            .iter()
            .any(|name| target.contains(name))
    });
    let final_names = check(&minimized).violated_invariants();
    Some((minimized, final_names))
}

/// The candidate list for one shrink step, in fixed priority order
/// (cheapest structural cuts first). Every candidate is valid and
/// strictly smaller than `sc` under the measure
/// `(faults, injections, gossip_on, backends, lbs, connections,
/// churn_on, pipeline, duration)`.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    // Drop one fault at a time.
    for i in 0..sc.faults.len() {
        let mut c = sc.clone();
        c.faults.remove(i);
        out.push(c);
    }
    // Drop one injection at a time.
    for i in 0..sc.injections.len() {
        let mut c = sc.clone();
        c.injections.remove(i);
        out.push(c);
    }
    // Disable gossip.
    if sc.gossip_period_ms > 0 {
        let mut c = sc.clone();
        c.gossip_period_ms = 0;
        c.gossip_mix_pct = 0;
        out.push(c);
    }
    // Halve the backend pool (keep at least two), dropping faults and
    // injections that referenced removed backends.
    if sc.backends.len() > 2 {
        let keep = (sc.backends.len() / 2).max(2);
        let mut c = sc.clone();
        c.backends.truncate(keep);
        let lbs = c.lbs;
        retain_in_range(&mut c, lbs, keep as u32);
        out.push(c);
    }
    // Halve the LB tier (keep at least one), dropping faults on removed
    // LBs; a tier of one cannot gossip.
    if sc.lbs > 1 {
        let keep = (sc.lbs / 2).max(1);
        let mut c = sc.clone();
        c.lbs = keep;
        if keep == 1 {
            c.gossip_period_ms = 0;
            c.gossip_mix_pct = 0;
        }
        let backends = c.backends.len() as u32;
        retain_in_range(&mut c, keep, backends);
        out.push(c);
    }
    // Halve the client load (keep at least two connections).
    if sc.connections > 2 {
        let mut c = sc.clone();
        c.connections = (sc.connections / 2).max(2);
        out.push(c);
    }
    // Turn connection churn off.
    if sc.requests_per_conn > 0 {
        let mut c = sc.clone();
        c.requests_per_conn = 0;
        out.push(c);
    }
    // Collapse pipelining.
    if sc.pipeline > 1 {
        let mut c = sc.clone();
        c.pipeline = 1;
        out.push(c);
    }
    // Halve the horizon (floored), dropping faults and injections that
    // could no longer fire.
    if sc.duration_ms / 2 >= MIN_DURATION_MS {
        let mut c = sc.clone();
        c.duration_ms = sc.duration_ms / 2;
        let horizon = c.duration_ms;
        c.faults.retain(|f| fault_start(f) < horizon);
        c.injections.retain(|inj| inj.at_ms < horizon);
        out.push(c);
    }

    out
}

fn fault_start(f: &FaultSpec) -> u32 {
    match *f {
        FaultSpec::Crash { down_ms, .. } | FaultSpec::Flap { down_ms, .. } => down_ms,
        FaultSpec::Impair { from_ms, .. } => from_ms,
    }
}

/// Drops faults and injections whose LB or backend index fell out of
/// range after a topology cut.
fn retain_in_range(sc: &mut Scenario, lbs: u32, backends: u32) {
    sc.faults.retain(|f| match *f {
        FaultSpec::Crash { backend, .. } => backend < backends,
        FaultSpec::Flap { lb, backend, .. } | FaultSpec::Impair { lb, backend, .. } => {
            lb < lbs && backend < backends
        }
    });
    sc.injections.retain(|inj| inj.backend < backends);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Injection;

    /// A busy scenario to shrink from.
    fn busy() -> Scenario {
        let mut sc = Scenario::generate(11);
        sc.lbs = 4;
        sc.backends = (0..5)
            .map(|i| crate::scenario::BackendSpec {
                median_us: 60 + 20 * i,
                sigma_pct: 30,
                workers: 4,
            })
            .collect();
        sc.connections = 24;
        sc.pipeline = 2;
        sc.requests_per_conn = 200;
        sc.duration_ms = 1600;
        sc.gossip_period_ms = 50;
        sc.gossip_mix_pct = 40;
        sc.faults = vec![
            FaultSpec::Crash {
                backend: 0,
                down_ms: 300,
                up_ms: 700,
            },
            FaultSpec::Flap {
                lb: 3,
                backend: 4,
                down_ms: 400,
                up_ms: 600,
            },
        ];
        sc.injections = vec![Injection {
            backend: 1,
            at_ms: 500,
            extra_us: 1000,
        }];
        sc.validate().unwrap();
        sc
    }

    #[test]
    fn always_true_predicate_shrinks_to_the_structural_floor() {
        let min = minimize_with(&busy(), |_| true);
        assert!(min.faults.is_empty());
        assert!(min.injections.is_empty());
        assert_eq!(min.gossip_period_ms, 0);
        assert_eq!(min.backends.len(), 2);
        assert_eq!(min.lbs, 1);
        assert_eq!(min.connections, 2);
        assert_eq!(min.requests_per_conn, 0);
        assert_eq!(min.pipeline, 1);
        assert!(min.duration_ms >= MIN_DURATION_MS);
        assert!(min.duration_ms < 1200);
        min.validate().unwrap();
    }

    #[test]
    fn always_false_predicate_changes_nothing() {
        let sc = busy();
        assert_eq!(minimize_with(&sc, |_| false), sc);
    }

    #[test]
    fn predicate_pinning_the_crash_keeps_the_crash_and_sheds_the_rest() {
        let needs_crash = |c: &Scenario| {
            c.faults
                .iter()
                .any(|f| matches!(f, FaultSpec::Crash { backend: 0, .. }))
        };
        let min = minimize_with(&busy(), needs_crash);
        assert!(needs_crash(&min), "minimizer lost the reproducing fault");
        assert_eq!(min.faults.len(), 1, "bystander faults survived");
        assert!(min.injections.is_empty());
        assert_eq!(min.lbs, 1);
        assert_eq!(min.backends.len(), 2);
        min.validate().unwrap();
    }

    #[test]
    fn predicate_needing_the_tier_keeps_multiple_lbs() {
        let min = minimize_with(&busy(), |c| c.lbs >= 2);
        assert_eq!(min.lbs, 2);
        min.validate().unwrap();
    }

    #[test]
    fn every_candidate_is_valid_everywhere_along_the_way() {
        // The predicate records and validates every candidate it sees.
        let mut seen = 0u32;
        let _ = minimize_with(&busy(), |c| {
            c.validate().unwrap();
            seen += 1;
            seen % 3 == 0 // accept an arbitrary deterministic subset
        });
        assert!(seen > 10);
    }

    #[test]
    fn horizon_cut_drops_late_faults() {
        let mut sc = busy();
        sc.duration_ms = 1600;
        sc.faults.push(FaultSpec::Crash {
            backend: 1,
            down_ms: 1500,
            up_ms: 1900,
        });
        sc.validate().unwrap();
        // Only accept horizon cuts (reject everything that still has a
        // late fault at full length), then confirm the late fault died
        // with the horizon.
        let min = minimize_with(&sc, |c| c.duration_ms <= 800);
        assert!(min.duration_ms <= 800);
        assert!(min.faults.iter().all(|f| fault_start(f) < min.duration_ms));
        min.validate().unwrap();
    }
}
