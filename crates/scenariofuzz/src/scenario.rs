//! The scenario spec: a random-but-deterministic cluster configuration
//! derived from a single u64 seed, plus an exact text serialization so
//! minimized violations can be committed as regression cases.
//!
//! Every field is an integer (durations in ms/µs, probabilities in
//! per-mille, ratios in percent): the `to_text`/`from_text` round trip
//! is byte-exact with no float-formatting concerns, and two builds of
//! the same case file construct bit-identical simulations.

use netsim::rng::{derive_seed, SimRng};

/// Derivation label for the scenario-generator RNG stream (keeps it
/// disjoint from the cluster's own `derive_seed` labels, which start
/// at 100).
const GEN_LABEL: u64 = 0xF022;

/// One backend's service profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendSpec {
    /// Median service time (µs) of the log-normal service distribution.
    pub median_us: u32,
    /// Shape parameter σ of the log-normal, in percent (30 = 0.30).
    pub sigma_pct: u32,
    /// Worker parallelism.
    pub workers: u32,
}

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Crash the backend node at `down_ms`, restart it at `up_ms`.
    Crash {
        /// Backend index.
        backend: u32,
        /// Crash instant (ms).
        down_ms: u32,
        /// Restart instant (ms).
        up_ms: u32,
    },
    /// Flap one LB's forwarding link to one backend (both directions
    /// drop while down).
    Flap {
        /// LB index.
        lb: u32,
        /// Backend index.
        backend: u32,
        /// Link-down instant (ms).
        down_ms: u32,
        /// Link-up instant (ms).
        up_ms: u32,
    },
    /// Stochastically impair the LB→backend direction of one forwarding
    /// link (corrupt/duplicate/reorder, probabilities in per-mille).
    Impair {
        /// LB index.
        lb: u32,
        /// Backend index.
        backend: u32,
        /// Impairment start (ms).
        from_ms: u32,
        /// Impairment end (ms).
        until_ms: u32,
        /// Corruption probability (per-mille).
        corrupt_pm: u32,
        /// Duplication probability (per-mille).
        duplicate_pm: u32,
        /// Reorder probability (per-mille).
        reorder_pm: u32,
        /// Maximum extra delay of a reordered packet (µs).
        window_us: u32,
        /// Seed of the impairment's private draw stream.
        seed: u64,
    },
}

/// One scheduled latency injection: `extra_us` added to every LB's
/// forwarding path to `backend` from `at_ms` on (the Fig. 3 event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Backend index.
    pub backend: u32,
    /// Injection instant (ms).
    pub at_ms: u32,
    /// Extra one-way delay (µs).
    pub extra_us: u32,
}

/// A complete generated scenario: topology, workload mix, controller
/// and gossip config, fault schedule, and injections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Root simulation seed (drives host/client/server RNG streams).
    pub seed: u64,
    /// Number of LB shards behind the VIP's ECMP route.
    pub lbs: u32,
    /// Per-backend service tiers (length = backend count).
    pub backends: Vec<BackendSpec>,
    /// Client connections (closed-loop).
    pub connections: u32,
    /// Pipeline depth per connection.
    pub pipeline: u32,
    /// GET fraction of the KV mix, in percent.
    pub get_ratio_pct: u32,
    /// SET value length in bytes (the bulk axis).
    pub value_len: u32,
    /// Connection churn: close/reopen after this many requests (0 = off).
    pub requests_per_conn: u32,
    /// Run length (ms).
    pub duration_ms: u32,
    /// Gossip round period (ms); 0 = isolated feedback.
    pub gossip_period_ms: u32,
    /// Gossip blend strength toward the peer mean, in percent.
    pub gossip_mix_pct: u32,
    /// Health probation timeout (ms).
    pub probation_ms: u32,
    /// Scripted faults.
    pub faults: Vec<FaultSpec>,
    /// Scheduled latency injections.
    pub injections: Vec<Injection>,
}

impl Scenario {
    /// Derives a scenario from a single u64 seed. Pure: the same seed
    /// always produces the same scenario.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = SimRng::seed_from_u64(derive_seed(seed, GEN_LABEL));
        let lbs = [1u32, 1, 2, 2, 3, 4][rng.gen_range(0..6usize)];
        let n_backends = rng.gen_range(2..=5u32);
        let tiers = [40u32, 60, 60, 80, 120, 200];
        let backends: Vec<BackendSpec> = (0..n_backends)
            .map(|_| BackendSpec {
                median_us: tiers[rng.gen_range(0..tiers.len())],
                sigma_pct: rng.gen_range(10..=50u32),
                workers: [2u32, 4][rng.gen_range(0..2usize)],
            })
            .collect();
        let duration_ms = rng.gen_range(900..=1700u32);

        let connections = rng.gen_range(8..=24u32);
        let pipeline = if rng.gen_bool(0.25) { 2 } else { 1 };
        let get_ratio_pct = rng.gen_range(10..=90u32);
        let value_len = [64u32, 512, 4096][rng.gen_range(0..3usize)];
        let requests_per_conn = [0u32, 100, 200, 400][rng.gen_range(0..4usize)];

        let (gossip_period_ms, gossip_mix_pct) = if lbs > 1 && rng.gen_bool(0.5) {
            (
                [25u32, 50, 100][rng.gen_range(0..3usize)],
                rng.gen_range(20..=60u32),
            )
        } else {
            (0, 0)
        };
        let probation_ms = if rng.gen_bool(0.5) { 800 } else { 2500 };

        // Faults. Crashes are capped at n_backends - 1 distinct backends
        // so the cluster retains at least one never-crashed backend (all
        // other fault kinds may still eject the rest).
        let mut faults = Vec::new();
        let mut crashed: Vec<u32> = Vec::new();
        let n_faults = rng.gen_range(0..=3u32);
        for _ in 0..n_faults {
            match rng.gen_range(0..3u32) {
                0 => {
                    if crashed.len() + 1 >= n_backends as usize {
                        continue;
                    }
                    let backend = rng.gen_range(0..n_backends);
                    if crashed.contains(&backend) {
                        continue;
                    }
                    crashed.push(backend);
                    let down_ms = rng.gen_range(250..=duration_ms * 2 / 5);
                    let up_ms = down_ms + rng.gen_range(200..=600u32);
                    faults.push(FaultSpec::Crash {
                        backend,
                        down_ms,
                        up_ms,
                    });
                }
                1 => {
                    let lb = rng.gen_range(0..lbs);
                    let backend = rng.gen_range(0..n_backends);
                    let down_ms = rng.gen_range(200..=duration_ms / 2);
                    let up_ms = down_ms + rng.gen_range(100..=400u32);
                    faults.push(FaultSpec::Flap {
                        lb,
                        backend,
                        down_ms,
                        up_ms,
                    });
                }
                _ => {
                    let lb = rng.gen_range(0..lbs);
                    let backend = rng.gen_range(0..n_backends);
                    let from_ms = rng.gen_range(200..=duration_ms / 2);
                    let until_ms = from_ms + rng.gen_range(200..=600u32);
                    faults.push(FaultSpec::Impair {
                        lb,
                        backend,
                        from_ms,
                        until_ms,
                        corrupt_pm: rng.gen_range(0..=20u32),
                        duplicate_pm: rng.gen_range(0..=20u32),
                        reorder_pm: rng.gen_range(0..=50u32),
                        window_us: rng.gen_range(50..=400u32),
                        seed: rng.next_u64(),
                    });
                }
            }
        }

        let n_inject = rng.gen_range(0..=2u32);
        let injections: Vec<Injection> = (0..n_inject)
            .map(|_| Injection {
                backend: rng.gen_range(0..n_backends),
                at_ms: rng.gen_range(200..=duration_ms * 3 / 5),
                extra_us: rng.gen_range(300..=1500u32),
            })
            .collect();

        Scenario {
            seed,
            lbs,
            backends,
            connections,
            pipeline,
            get_ratio_pct,
            value_len,
            requests_per_conn,
            duration_ms,
            gossip_period_ms,
            gossip_mix_pct,
            probation_ms,
            faults,
            injections,
        }
    }

    /// Serializes the scenario as the committed case-file format: one
    /// `key = value` line per scalar, one line per backend/fault/
    /// injection, `#` comments allowed. Round-trips exactly through
    /// [`Scenario::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# scenariofuzz case v1\n");
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("lbs = {}\n", self.lbs));
        out.push_str(&format!("connections = {}\n", self.connections));
        out.push_str(&format!("pipeline = {}\n", self.pipeline));
        out.push_str(&format!("get_ratio_pct = {}\n", self.get_ratio_pct));
        out.push_str(&format!("value_len = {}\n", self.value_len));
        out.push_str(&format!("requests_per_conn = {}\n", self.requests_per_conn));
        out.push_str(&format!("duration_ms = {}\n", self.duration_ms));
        out.push_str(&format!("gossip_period_ms = {}\n", self.gossip_period_ms));
        out.push_str(&format!("gossip_mix_pct = {}\n", self.gossip_mix_pct));
        out.push_str(&format!("probation_ms = {}\n", self.probation_ms));
        for b in &self.backends {
            out.push_str(&format!(
                "backend = median_us={} sigma_pct={} workers={}\n",
                b.median_us, b.sigma_pct, b.workers
            ));
        }
        for f in &self.faults {
            match *f {
                FaultSpec::Crash {
                    backend,
                    down_ms,
                    up_ms,
                } => out.push_str(&format!(
                    "fault = crash backend={backend} down_ms={down_ms} up_ms={up_ms}\n"
                )),
                FaultSpec::Flap {
                    lb,
                    backend,
                    down_ms,
                    up_ms,
                } => out.push_str(&format!(
                    "fault = flap lb={lb} backend={backend} down_ms={down_ms} up_ms={up_ms}\n"
                )),
                FaultSpec::Impair {
                    lb,
                    backend,
                    from_ms,
                    until_ms,
                    corrupt_pm,
                    duplicate_pm,
                    reorder_pm,
                    window_us,
                    seed,
                } => out.push_str(&format!(
                    "fault = impair lb={lb} backend={backend} from_ms={from_ms} \
                     until_ms={until_ms} corrupt_pm={corrupt_pm} duplicate_pm={duplicate_pm} \
                     reorder_pm={reorder_pm} window_us={window_us} seed={seed}\n"
                )),
            }
        }
        for inj in &self.injections {
            out.push_str(&format!(
                "inject = backend={} at_ms={} extra_us={}\n",
                inj.backend, inj.at_ms, inj.extra_us
            ));
        }
        out
    }

    /// Parses the case-file format written by [`Scenario::to_text`].
    /// Blank lines and `#` comments are skipped; unknown keys, malformed
    /// lines, and structurally invalid scenarios are errors.
    pub fn from_text(text: &str) -> Result<Scenario, String> {
        let mut sc = Scenario {
            seed: 0,
            lbs: 1,
            backends: Vec::new(),
            connections: 8,
            pipeline: 1,
            get_ratio_pct: 50,
            value_len: 64,
            requests_per_conn: 200,
            duration_ms: 1000,
            gossip_period_ms: 0,
            gossip_mix_pct: 0,
            probation_ms: 2500,
            faults: Vec::new(),
            injections: Vec::new(),
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |e: String| format!("line {}: {e}", lineno + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at("expected `key = value`".into()))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => sc.seed = parse_u64(value).map_err(at)?,
                "lbs" => sc.lbs = parse_u32(value).map_err(at)?,
                "connections" => sc.connections = parse_u32(value).map_err(at)?,
                "pipeline" => sc.pipeline = parse_u32(value).map_err(at)?,
                "get_ratio_pct" => sc.get_ratio_pct = parse_u32(value).map_err(at)?,
                "value_len" => sc.value_len = parse_u32(value).map_err(at)?,
                "requests_per_conn" => sc.requests_per_conn = parse_u32(value).map_err(at)?,
                "duration_ms" => sc.duration_ms = parse_u32(value).map_err(at)?,
                "gossip_period_ms" => sc.gossip_period_ms = parse_u32(value).map_err(at)?,
                "gossip_mix_pct" => sc.gossip_mix_pct = parse_u32(value).map_err(at)?,
                "probation_ms" => sc.probation_ms = parse_u32(value).map_err(at)?,
                "backend" => {
                    let kv = KvList::parse(value).map_err(at)?;
                    sc.backends.push(BackendSpec {
                        median_us: kv.u32("median_us").map_err(at)?,
                        sigma_pct: kv.u32("sigma_pct").map_err(at)?,
                        workers: kv.u32("workers").map_err(at)?,
                    });
                }
                "fault" => {
                    let (kind, rest) = value.split_once(' ').unwrap_or((value, ""));
                    let kv = KvList::parse(rest).map_err(at)?;
                    let fault = match kind {
                        "crash" => FaultSpec::Crash {
                            backend: kv.u32("backend").map_err(at)?,
                            down_ms: kv.u32("down_ms").map_err(at)?,
                            up_ms: kv.u32("up_ms").map_err(at)?,
                        },
                        "flap" => FaultSpec::Flap {
                            lb: kv.u32("lb").map_err(at)?,
                            backend: kv.u32("backend").map_err(at)?,
                            down_ms: kv.u32("down_ms").map_err(at)?,
                            up_ms: kv.u32("up_ms").map_err(at)?,
                        },
                        "impair" => FaultSpec::Impair {
                            lb: kv.u32("lb").map_err(at)?,
                            backend: kv.u32("backend").map_err(at)?,
                            from_ms: kv.u32("from_ms").map_err(at)?,
                            until_ms: kv.u32("until_ms").map_err(at)?,
                            corrupt_pm: kv.u32("corrupt_pm").map_err(at)?,
                            duplicate_pm: kv.u32("duplicate_pm").map_err(at)?,
                            reorder_pm: kv.u32("reorder_pm").map_err(at)?,
                            window_us: kv.u32("window_us").map_err(at)?,
                            seed: kv.u64("seed").map_err(at)?,
                        },
                        other => return Err(at(format!("unknown fault kind {other:?}"))),
                    };
                    sc.faults.push(fault);
                }
                "inject" => {
                    let kv = KvList::parse(value).map_err(at)?;
                    sc.injections.push(Injection {
                        backend: kv.u32("backend").map_err(at)?,
                        at_ms: kv.u32("at_ms").map_err(at)?,
                        extra_us: kv.u32("extra_us").map_err(at)?,
                    });
                }
                other => return Err(at(format!("unknown key {other:?}"))),
            }
        }
        sc.validate()?;
        Ok(sc)
    }

    /// Structural sanity: at least 2 backends and 1 LB, fault/injection
    /// indices in range, fault windows well-ordered.
    pub fn validate(&self) -> Result<(), String> {
        if self.lbs < 1 {
            return Err("at least one LB".into());
        }
        if self.backends.len() < 2 {
            return Err("at least two backends".into());
        }
        if self.connections < 1 || self.pipeline < 1 {
            return Err("connections and pipeline must be >= 1".into());
        }
        if self.get_ratio_pct > 100 || self.gossip_mix_pct > 100 {
            return Err("percent fields must be <= 100".into());
        }
        if self.duration_ms < 100 {
            return Err("duration too short".into());
        }
        let n = self.backends.len() as u32;
        for f in &self.faults {
            let (lb, backend, lo, hi) = match *f {
                FaultSpec::Crash {
                    backend,
                    down_ms,
                    up_ms,
                } => (0, backend, down_ms, up_ms),
                FaultSpec::Flap {
                    lb,
                    backend,
                    down_ms,
                    up_ms,
                } => (lb, backend, down_ms, up_ms),
                FaultSpec::Impair {
                    lb,
                    backend,
                    from_ms,
                    until_ms,
                    ..
                } => (lb, backend, from_ms, until_ms),
            };
            if lb >= self.lbs {
                return Err(format!("fault references LB {lb} of {}", self.lbs));
            }
            if backend >= n {
                return Err(format!("fault references backend {backend} of {n}"));
            }
            if lo >= hi {
                return Err(format!("fault window [{lo}, {hi}) ms is empty"));
            }
        }
        for inj in &self.injections {
            if inj.backend >= n {
                return Err(format!(
                    "injection references backend {} of {n}",
                    inj.backend
                ));
            }
        }
        Ok(())
    }
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|e| format!("bad integer {s:?}: {e}"))
}

fn parse_u32(s: &str) -> Result<u32, String> {
    s.parse::<u32>()
        .map_err(|e| format!("bad integer {s:?}: {e}"))
}

/// A `k=v k=v ...` list on one line.
struct KvList<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> KvList<'a> {
    fn parse(s: &'a str) -> Result<KvList<'a>, String> {
        let mut pairs = Vec::new();
        for tok in s.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected k=v, got {tok:?}"))?;
            pairs.push((k, v));
        }
        Ok(KvList { pairs })
    }

    fn get(&self, key: &str) -> Result<&'a str, String> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        parse_u32(self.get(key)?)
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        parse_u64(self.get(key)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in 0..64u64 {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
        assert_ne!(Scenario::generate(1), Scenario::generate(2));
    }

    #[test]
    fn generated_scenarios_are_valid_and_round_trip() {
        for seed in 0..128u64 {
            let sc = Scenario::generate(seed);
            sc.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let text = sc.to_text();
            let back =
                Scenario::from_text(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(back, sc, "seed {seed} did not round-trip");
            // Serialization itself is canonical.
            assert_eq!(back.to_text(), text);
        }
    }

    #[test]
    fn generator_covers_the_config_axes() {
        let scs: Vec<Scenario> = (0..200).map(Scenario::generate).collect();
        assert!(scs.iter().any(|s| s.lbs > 1), "no multi-LB scenario");
        assert!(scs.iter().any(|s| s.lbs == 1), "no single-LB scenario");
        assert!(scs.iter().any(|s| s.gossip_period_ms > 0), "no gossip");
        assert!(
            scs.iter().any(|s| s
                .faults
                .iter()
                .any(|f| matches!(f, FaultSpec::Crash { .. }))),
            "no crash fault"
        );
        assert!(
            scs.iter()
                .any(|s| s.faults.iter().any(|f| matches!(f, FaultSpec::Flap { .. }))),
            "no flap fault"
        );
        assert!(
            scs.iter().any(|s| s
                .faults
                .iter()
                .any(|f| matches!(f, FaultSpec::Impair { .. }))),
            "no impairment fault"
        );
        assert!(scs.iter().any(|s| !s.injections.is_empty()), "no injection");
        assert!(scs.iter().any(|s| s.faults.is_empty()), "no quiet scenario");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let sc = Scenario::generate(3);
        let mut text = String::from("# a comment\n\n");
        text.push_str(&sc.to_text());
        text.push_str("\n# violation: weights_normalized at t=123\n");
        assert_eq!(Scenario::from_text(&text).unwrap(), sc);
    }

    #[test]
    fn malformed_input_reports_the_line() {
        let err = Scenario::from_text("seed = 1\nbogus_key = 2\n").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
        let err = Scenario::from_text("fault = warp lb=0\n").unwrap_err();
        assert!(err.contains("unknown fault kind"), "{err}");
        let err = Scenario::from_text("seed = 1\n").unwrap_err();
        assert!(err.contains("two backends"), "{err}");
    }

    #[test]
    fn validation_rejects_out_of_range_references() {
        let mut sc = Scenario::generate(0);
        sc.faults = vec![FaultSpec::Crash {
            backend: 99,
            down_ms: 100,
            up_ms: 200,
        }];
        assert!(sc.validate().is_err());
        let mut sc = Scenario::generate(0);
        sc.faults = vec![FaultSpec::Flap {
            lb: sc.lbs,
            backend: 0,
            down_ms: 100,
            up_ms: 200,
        }];
        assert!(sc.validate().is_err());
    }
}
