//! Quickstart: stand up a load-balanced key-value cluster, slow one
//! backend down, and watch the latency-aware LB route around it.
//!
//! Run with: `cargo run --release --example quickstart`

use experiments::fig3::{fig3_summary_table, run_fig3, Fig3Config};

fn main() {
    // A 12-second, two-backend cluster; 1 ms of extra delay appears on
    // the path to backend 0 at t = 4 s.
    let cfg = Fig3Config::quick();
    println!(
        "simulating {}s of a 2-backend cluster, +1ms at backend 0 from t={}s ...",
        cfg.duration.as_secs_f64(),
        cfg.inject_at.as_secs_f64()
    );

    let result = run_fig3(&cfg);

    println!();
    fig3_summary_table(&result).print();
    println!();
    match result.aware.first_reaction {
        Some(t) => {
            let inject_ns = (netsim::Time::ZERO + cfg.inject_at).as_nanos();
            println!(
                "the latency-aware LB started shifting traffic {:.2} ms after the slowdown;",
                (t - inject_ns) as f64 / 1e6
            );
            println!(
                "its p95 GET latency stayed at {:.2}x the healthy level, while plain Maglev sat at {:.2}x.",
                result.aware.p95_after as f64 / result.aware.p95_before as f64,
                result.baseline.p95_after as f64 / result.baseline.p95_before as f64,
            );
        }
        None => println!("the controller never reacted — check the configuration"),
    }
}
