//! Watch the LB estimate a flow's RTT without seeing any response packets.
//!
//! A window-limited bulk TCP flow runs through the LB under Direct Server
//! Return (the LB sees only client→server packets). At t = 3 s the path
//! RTT jumps by 1 ms. `ENSEMBLETIMEOUT` re-selects its batch timeout every
//! 64 ms epoch via sample-cliff detection and keeps tracking the truth.
//!
//! Run with: `cargo run --release --example rtt_tracking`

use experiments::fig2::{run_fig2b, Fig2Config};
use telemetry::exact_percentile;

fn main() {
    let cfg = Fig2Config::default();
    println!(
        "observing a backlogged flow at the LB for {}s; RTT steps +1ms at t={}s ...\n",
        cfg.duration.as_secs_f64(),
        cfg.step_at.as_secs_f64()
    );
    let r = run_fig2b(&cfg);

    println!("  time   true RTT   LB estimate   chosen timeout");
    let bin = 500_000_000u64; // 0.5 s rows
    let end = r.trace.truth.iter().map(|&(t, _)| t).max().unwrap_or(0);
    for b in 0..=(end / bin) {
        let lo = b * bin;
        let hi = lo + bin;
        let truth: Vec<u64> = r
            .trace
            .truth
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        let est: Vec<u64> = r
            .samples
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        let delta = r
            .decisions
            .iter()
            .take_while(|&&(t, _)| t <= hi)
            .last()
            .map(|&(_, d)| format!("{} us", d / 1000))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:>4.1}s  {:>7.1} us  {:>8.1} us   {}",
            lo as f64 / 1e9,
            exact_percentile(&truth, 0.5).unwrap_or(0) as f64 / 1e3,
            exact_percentile(&est, 0.5).unwrap_or(0) as f64 / 1e3,
            delta,
        );
    }
    println!();
    println!(
        "accuracy before the step (median rel. error): {:.1}%",
        r.pre_step.median_rel_err * 100.0
    );
    println!(
        "accuracy after the step  (median rel. error): {:.1}%",
        r.post_step.median_rel_err * 100.0
    );
}
