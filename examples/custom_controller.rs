//! Plug a custom feedback controller into the LB.
//!
//! The `lbcore::Controller` trait is the extension point the paper's §5(4)
//! asks the community to explore. This example implements a "two-level"
//! controller — an aggressive shift when the latency gap is large, a
//! gentle one otherwise — and runs it head-to-head against the paper's
//! fixed α = 10% shift on the Fig. 3 scenario.
//!
//! Run with: `cargo run --release --example custom_controller`

use experiments::topology::{KvCluster, KvClusterConfig, VIP};
use lb_dataplane::LbConfig;
use lbcore::{AlphaShift, BackendEstimator, Controller, Weights};
use netsim::{Duration, Time};
use telemetry::exact_percentile;

/// Shift 30% when the worst backend is ≥ 3x slower than the best other,
/// 5% when it is merely ≥ 1.2x slower.
struct TwoLevelShift {
    last_action: Option<u64>,
}

impl Controller for TwoLevelShift {
    fn maybe_update(&mut self, now: u64, est: &BackendEstimator, weights: &mut Weights) -> bool {
        // At most one action per millisecond.
        if let Some(last) = self.last_action {
            if now - last < 1_000_000 {
                return false;
            }
        }
        let Some((worst, worst_lat)) = est.worst(now) else {
            return false;
        };
        let Some(best) = est.best_other(worst, now) else {
            return false;
        };
        let alpha = if worst_lat >= 3.0 * best {
            0.30
        } else if worst_lat >= 1.2 * best {
            0.05
        } else {
            return false;
        };
        let moved = weights.shift_from(worst, alpha);
        if moved > 0.0 {
            self.last_action = Some(now);
            true
        } else {
            false
        }
    }

    fn name(&self) -> &'static str {
        "two-level"
    }
}

fn run(name: &str, make: impl FnOnce() -> Box<dyn Controller>) {
    let ctl = make();
    let lb_factory: Box<dyn FnOnce(Vec<std::net::Ipv4Addr>) -> LbConfig> =
        Box::new(move |backends| LbConfig::latency_aware(VIP, backends, ctl));
    let mut cfg = KvClusterConfig::fig3_defaults(lb_factory);
    cfg.seed = 42;
    let mut cluster = KvCluster::build(cfg);
    let inject_at = Time::ZERO + Duration::from_secs(4);
    cluster.inject_backend_delay(0, inject_at, Duration::from_millis(1));
    cluster.sim.run_for(Duration::from_secs(12));

    let rec = &cluster.client_app(0).recorder;
    let after: Vec<u64> = rec
        .raw()
        .iter()
        .filter(|&&(t, _, g)| g && t >= inject_at.as_nanos())
        .map(|&(_, l, _)| l)
        .collect();
    let lb = cluster.lb_node();
    let reaction = lb
        .weight_series(0)
        .points()
        .iter()
        .find(|&&(t, w)| t > inject_at.as_nanos() && w < 0.5)
        .map(|&(t, _)| format!("{:.2} ms", (t - inject_at.as_nanos()) as f64 / 1e6))
        .unwrap_or_else(|| "never".into());
    println!(
        "  {name:<12}  post-injection p95 = {:>7.1} us   reaction = {reaction:<9}  rebuilds = {}",
        exact_percentile(&after, 0.95).unwrap_or(0) as f64 / 1e3,
        lb.stats().table_rebuilds,
    );
}

fn main() {
    println!("custom controller vs the paper's alpha-shift (1ms injected at t=4s):\n");
    run("alpha-shift", || Box::new(AlphaShift::damped()));
    run("two-level", || {
        Box::new(TwoLevelShift { last_action: None })
    });
}
