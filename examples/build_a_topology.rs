//! Build a topology from scratch with the low-level API — no scenario
//! helpers — to show how the pieces compose: simulator, hosts, router,
//! LB, servers, and apps.
//!
//! Topology (a 3-backend DSR cluster):
//!
//! ```text
//!   client ── router ──► LB ──► backend_j     (requests, via the LB)
//!      ▲         │
//!      └─────────┴◄──── backend_j             (responses, bypassing the LB)
//! ```
//!
//! Run with: `cargo run --release --example build_a_topology`

use std::net::Ipv4Addr;

use backend::{KvServerApp, KvServerConfig, ServiceDist};
use lb_dataplane::{LbConfig, LbNode};
use lbcore::AlphaShift;
use netpkt::MacAddr;
use netsim::router::Router;
use netsim::{Duration, LinkConfig, Simulation};
use nettcp::{Host, HostConfig};
use workload::{MemtierClient, MemtierConfig};

const VIP: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);

fn main() {
    let mut sim = Simulation::new();
    let link = LinkConfig::new(10_000_000_000, Duration::from_micros(15), 1 << 20);

    // Reserve the router and LB so links can reference them.
    let router_id = sim.reserve_node("router");
    let lb_id = sim.reserve_node("lb");
    let mut router = Router::new();

    // The LB's arm: client→VIP traffic is routed here.
    let lb_arm = sim.add_link(router_id, lb_id, link);
    router.add_route(VIP, lb_arm);

    // Three backends, each with a forwarding link (LB→backend) and a
    // return link (backend→router) for Direct Server Return.
    let mut backend_ips = Vec::new();
    let mut fwd_links = Vec::new();
    for j in 0..3u8 {
        let ip = Ipv4Addr::new(10, 0, 2, 1 + j);
        let node = sim.reserve_node(format!("backend-{j}"));
        let fwd = sim.add_link(lb_id, node, link);
        let ret = sim.add_link(router_id, node, link);
        router.add_route(ip, ret);

        let mut host_cfg = HostConfig::new(ip, 100 + j as u64);
        host_cfg.extra_ips.push(VIP); // the VIP lives on every backend's loopback
        let server = KvServerApp::new(KvServerConfig {
            // Give each backend a different speed so the weights diverge.
            service: ServiceDist::Constant(40_000 * (1 + j as u64)),
            ..KvServerConfig::default()
        });
        sim.install_node(
            node,
            Box::new(Host::new(
                host_cfg,
                MacAddr::from_id(0xb0 + j as u32),
                ret,
                Box::new(server),
            )),
        );
        backend_ips.push(ip);
        fwd_links.push(fwd);
    }

    // The load balancer: latency-aware, paper's α-shift controller.
    let lb_cfg = LbConfig::latency_aware(VIP, backend_ips, Box::new(AlphaShift::damped()));
    sim.install_node(
        lb_id,
        Box::new(LbNode::new(lb_cfg, MacAddr::from_id(0xff), fwd_links)),
    );

    // One client host running 12 closed-loop connections.
    let client_ip = Ipv4Addr::new(10, 0, 0, 1);
    let client_id = sim.reserve_node("client");
    let access = sim.add_link(router_id, client_id, link);
    router.add_route(client_ip, access);
    let client = MemtierClient::new(MemtierConfig {
        vip: VIP,
        connections: 12,
        pipeline: 1,
        requests_per_conn: 100,
        ..MemtierConfig::default()
    });
    sim.install_node(
        client_id,
        Box::new(Host::new(
            HostConfig::new(client_ip, 7),
            MacAddr::from_id(0xc0),
            access,
            Box::new(client),
        )),
    );

    sim.install_node(router_id, Box::new(router));

    // Run 10 simulated seconds.
    sim.run_for(Duration::from_secs(10));

    // Harvest results.
    let lb = sim.node_ref::<LbNode>(lb_id).expect("lb node");
    println!("after 10s, the LB weighted the backends:");
    for (j, w) in lb.weights().as_slice().iter().enumerate() {
        let est = lb.estimator().backend(j);
        println!(
            "  backend {j}: weight {:.2}  measured latency (p95) {:.0} us  [{} samples]",
            w,
            est.p95() / 1e3,
            est.samples(),
        );
    }
    let client = sim
        .node_ref::<Host>(client_id)
        .unwrap()
        .app_ref::<MemtierClient>()
        .unwrap();
    println!(
        "client completed {} requests; overall p95 = {:.0} us",
        client.recorder.responses,
        client.recorder.all.quantile(0.95) as f64 / 1e3,
    );
    println!("(faster backends should hold more weight)");
}
