//! Export a simulated run as a pcap file you can open in Wireshark.
//!
//! Captures the load balancer's viewpoint — which, under Direct Server
//! Return, contains **only client→VIP packets**: opening the capture makes
//! the paper's core constraint visible (not one response in the trace).
//!
//! Run with: `cargo run --release --example capture_pcap [out.pcap]`

use experiments::fig2::Fig2Config;
use experiments::topology::{BacklogScenario, BacklogScenarioConfig};
use netsim::{Duration, TraceKind};

fn main() -> std::io::Result<()> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "lb_view.pcap".into());

    let cfg = Fig2Config::default();
    let mut scenario = BacklogScenario::build(BacklogScenarioConfig {
        seed: cfg.seed,
        ..BacklogScenarioConfig::fig2_defaults()
    });
    scenario.sim.enable_trace_with_bytes(1 << 20);
    // Keep the file small: 300 ms of a backlogged flow.
    scenario.sim.run_for(Duration::from_millis(300));

    let lb = scenario.lb;
    let mut file = std::io::BufWriter::new(std::fs::File::create(&out_path)?);
    let written = scenario
        .sim
        .trace()
        .write_pcap(&mut file, |e| e.node == lb && e.kind == TraceKind::Deliver)?;
    println!("wrote {written} frames (the LB's receive path) to {out_path}");
    println!("note: every packet is client→VIP — DSR hides all responses from the LB.");
    Ok(())
}
