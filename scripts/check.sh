#!/usr/bin/env bash
# Tier-1 gate: everything CI runs, runnable locally with one command.
#
#   ./scripts/check.sh
#
# Order is cheapest-first so the common failure modes surface fast:
# formatting, then the simlint static pass (determinism + fast-path
# rules, see README.md "simlint"), then build, then tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> simlint --workspace"
cargo run -q -p simlint -- --workspace

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

echo "All checks passed."
