#!/usr/bin/env bash
# Tier-1 gate: everything CI runs, runnable locally with one command.
#
#   ./scripts/check.sh
#
# Order is cheapest-first so the common failure modes surface fast:
# formatting, then the simlint static pass (determinism, fast-path,
# concurrency-readiness, global-ordering, and journal-schema rules, see
# README.md "simlint"), then build, then tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Gates on deny-tier findings and on warn-tier findings not covered by
# the committed simlint.baseline. To accept a new warn finding:
#   cargo run -q -p simlint -- --workspace --update-baseline
echo "==> simlint --workspace"
cargo run -q -p simlint -- --workspace

# The analyzer's own test suite (lexer, item parser, rules, baseline,
# and the golden fixture corpus) is tier-1: a rule regression must not
# be able to slip through via a green workspace scan alone.
echo "==> simlint self-tests"
cargo test -q -p simlint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

# The root-package integration suites (determinism, DSR invariants,
# health ejection under fault injection, multi-LB conformance and
# invariants, observability/journal/span conformance) and the
# lbcore/netsim property tests are part of `--workspace` above; run
# them by name too so a filtered or partial test invocation can't
# silently skip the tier-1 suites.
echo "==> tier-1 integration suites (release)"
cargo test -q --release --test determinism --test dsr_invariants \
    --test health_ejection --test paper_claims \
    --test multilb_conformance --test multilb_invariants \
    --test observability --test fuzz_regressions
cargo test -q -p lbcore --test proptests
cargo test -q -p netsim --test ecmp_proptests
# The span tracer's unit layer (hop schema, critical-path walk,
# NDJSON, ring/flight-recorder) and its analyzer (span capture,
# critical-path table, error-budget join) are tier-1 by name: the
# observability suite above consumes them end to end, but a unit
# regression should name the layer it broke.
cargo test -q --release -p telemetry --lib
cargo test -q --release -p bench --lib

# Scenario-fuzz smoke campaign: every seed in the smoke range runs the
# full invariant suite (each seed twice, for the determinism check).
# Gating — a violation here is a real bug, and the failing seed can be
# shrunk locally with `scenariofuzz minimize --seed N`.
echo "==> scenariofuzz smoke campaign (seeds 0..25)"
cargo run -q --release -p bench --bin scenariofuzz -- run --seeds 0..25 \
    --out target/bench/fuzz_smoke.json

# Perf snapshot: quick variants of the pinned perfbench scenarios, plus
# the fig3_kv_journal and fig3_kv_spans overhead points (journal /
# span recording on). Non-gating — numbers are host-dependent; the
# artifact is for trend tracking (see EXPERIMENTS.md "Performance"),
# not pass/fail.
echo "==> perfbench --quick --journal --spans (non-gating)"
cargo run -q --release -p bench --bin perfbench -- --quick --journal --spans \
    --out target/bench/BENCH_perf_quick.json \
    || echo "perfbench failed (non-gating); continuing"

echo "All checks passed."
